//! Vectorised expression evaluation over batches.
//!
//! Expressions are evaluated one batch at a time into transient vectors —
//! within a compiled pipeline these play the role of the "registers" JIT
//! code generation keeps intermediate results in (§2.2): they are never
//! materialised across operators.

use hape_storage::table::DataType;
use hape_storage::Batch;

/// A scalar expression over the columns of a batch.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Column reference by index.
    Col(usize),
    /// `i32` literal.
    LitI32(i32),
    /// `i64` literal.
    LitI64(i64),
    /// `f64` literal.
    LitF64(f64),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Equality.
    Eq(Box<Expr>, Box<Expr>),
    /// Less-than.
    Lt(Box<Expr>, Box<Expr>),
    /// Less-or-equal.
    Le(Box<Expr>, Box<Expr>),
    /// Greater-than.
    Gt(Box<Expr>, Box<Expr>),
    /// Greater-or-equal.
    Ge(Box<Expr>, Box<Expr>),
    /// Logical and.
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::Lt(Box::new(a), Box::new(b))
    }

    /// `a <= b`.
    pub fn le(a: Expr, b: Expr) -> Expr {
        Expr::Le(Box::new(a), Box::new(b))
    }

    /// `a > b`.
    pub fn gt(a: Expr, b: Expr) -> Expr {
        Expr::Gt(Box::new(a), Box::new(b))
    }

    /// `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> Expr {
        Expr::Ge(Box::new(a), Box::new(b))
    }

    /// `a && b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// `a || b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Approximate arithmetic operations per row (for cost charging).
    pub fn ops_per_row(&self) -> f64 {
        match self {
            Expr::Col(_) | Expr::LitI32(_) | Expr::LitI64(_) | Expr::LitF64(_) => 0.25,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Eq(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => 1.0 + a.ops_per_row() + b.ops_per_row(),
        }
    }

    /// Column indices referenced by this expression.
    pub fn columns_used(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::LitI32(_) | Expr::LitI64(_) | Expr::LitF64(_) => {}
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Eq(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }
}

/// Result of evaluating an expression over a batch.
#[derive(Debug, Clone)]
pub enum ExprValue {
    /// Numeric vector (all arithmetic is carried out in `f64`; exact-integer
    /// paths matter only for key columns, which operators read directly).
    F64(Vec<f64>),
    /// Boolean vector (predicates).
    Bool(Vec<bool>),
}

impl ExprValue {
    /// The numeric vector; panics on booleans.
    pub fn as_f64(&self) -> &[f64] {
        match self {
            ExprValue::F64(v) => v,
            ExprValue::Bool(_) => panic!("expected numeric expression, got boolean"),
        }
    }

    /// The boolean vector; panics on numerics.
    pub fn as_bool(&self) -> &[bool] {
        match self {
            ExprValue::Bool(v) => v,
            ExprValue::F64(_) => panic!("expected boolean expression, got numeric"),
        }
    }
}

fn column_as_f64(batch: &Batch, i: usize) -> Vec<f64> {
    let c = batch.col(i);
    match c.data_type() {
        DataType::I32 | DataType::Date => c.as_i32().iter().map(|&v| v as f64).collect(),
        DataType::I64 => c.as_i64().iter().map(|&v| v as f64).collect(),
        DataType::F64 => c.as_f64().to_vec(),
        DataType::Str => c.as_codes().iter().map(|&v| v as f64).collect(),
    }
}

/// Evaluate `expr` over `batch`.
pub fn eval(expr: &Expr, batch: &Batch) -> ExprValue {
    let n = batch.rows();
    match expr {
        Expr::Col(i) => ExprValue::F64(column_as_f64(batch, *i)),
        Expr::LitI32(v) => ExprValue::F64(vec![*v as f64; n]),
        Expr::LitI64(v) => ExprValue::F64(vec![*v as f64; n]),
        Expr::LitF64(v) => ExprValue::F64(vec![*v; n]),
        Expr::Add(a, b) => binary_num(a, b, batch, |x, y| x + y),
        Expr::Sub(a, b) => binary_num(a, b, batch, |x, y| x - y),
        Expr::Mul(a, b) => binary_num(a, b, batch, |x, y| x * y),
        Expr::Eq(a, b) => binary_cmp(a, b, batch, |x, y| x == y),
        Expr::Lt(a, b) => binary_cmp(a, b, batch, |x, y| x < y),
        Expr::Le(a, b) => binary_cmp(a, b, batch, |x, y| x <= y),
        Expr::Gt(a, b) => binary_cmp(a, b, batch, |x, y| x > y),
        Expr::Ge(a, b) => binary_cmp(a, b, batch, |x, y| x >= y),
        Expr::And(a, b) => binary_bool(a, b, batch, |x, y| x && y),
        Expr::Or(a, b) => binary_bool(a, b, batch, |x, y| x || y),
    }
}

fn binary_num(a: &Expr, b: &Expr, batch: &Batch, f: impl Fn(f64, f64) -> f64) -> ExprValue {
    let va = eval(a, batch);
    let vb = eval(b, batch);
    let (va, vb) = (va.as_f64(), vb.as_f64());
    ExprValue::F64(va.iter().zip(vb).map(|(&x, &y)| f(x, y)).collect())
}

fn binary_cmp(a: &Expr, b: &Expr, batch: &Batch, f: impl Fn(f64, f64) -> bool) -> ExprValue {
    let va = eval(a, batch);
    let vb = eval(b, batch);
    let (va, vb) = (va.as_f64(), vb.as_f64());
    ExprValue::Bool(va.iter().zip(vb).map(|(&x, &y)| f(x, y)).collect())
}

fn binary_bool(a: &Expr, b: &Expr, batch: &Batch, f: impl Fn(bool, bool) -> bool) -> ExprValue {
    let va = eval(a, batch);
    let vb = eval(b, batch);
    let (va, vb) = (va.as_bool(), vb.as_bool());
    ExprValue::Bool(va.iter().zip(vb).map(|(&x, &y)| f(x, y)).collect())
}

/// Evaluate a predicate into a boolean vector.
pub fn eval_bool(expr: &Expr, batch: &Batch) -> Vec<bool> {
    match eval(expr, batch) {
        ExprValue::Bool(v) => v,
        ExprValue::F64(_) => panic!("predicate does not evaluate to boolean"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_storage::Column;

    fn batch() -> Batch {
        Batch::new(vec![
            Column::from_i32(vec![1, 2, 3, 4]),
            Column::from_f64(vec![10.0, 20.0, 30.0, 40.0]),
        ])
    }

    #[test]
    fn arithmetic() {
        // col1 * (1 - col0) — the Q1 `extendedprice * (1 - discount)` shape.
        let e = Expr::mul(Expr::col(1), Expr::sub(Expr::LitF64(1.0), Expr::col(0)));
        let v = eval(&e, &batch());
        assert_eq!(v.as_f64(), &[0.0, -20.0, -60.0, -120.0]);
    }

    #[test]
    fn comparisons_and_logic() {
        let e = Expr::and(
            Expr::ge(Expr::col(0), Expr::LitI32(2)),
            Expr::lt(Expr::col(1), Expr::LitF64(40.0)),
        );
        assert_eq!(eval_bool(&e, &batch()), vec![false, true, true, false]);
    }

    #[test]
    fn ops_per_row_counts_nodes() {
        let e = Expr::mul(Expr::col(1), Expr::sub(Expr::LitF64(1.0), Expr::col(0)));
        assert!(e.ops_per_row() > 2.0);
        assert!(Expr::col(0).ops_per_row() < 1.0);
    }

    #[test]
    fn columns_used_deduplicates() {
        let e = Expr::add(Expr::col(1), Expr::mul(Expr::col(0), Expr::col(1)));
        assert_eq!(e.columns_used(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "boolean")]
    fn type_confusion_panics() {
        let e = Expr::add(Expr::col(0), Expr::col(1));
        eval_bool(&e, &batch());
    }
}
