//! Aggregation: ungrouped and hash group-by, with mergeable partial states.
//!
//! Parallel aggregation follows the paper's horizontal co-processing example
//! (§5): every worker (CPU core or GPU) folds its packets into a *partial*
//! [`AggState`]; the states are then merged — the routers never have to
//! synchronise on a shared hash table, which is exactly what makes the
//! operator heterogeneity-oblivious.

use std::collections::HashMap;

use hape_storage::table::DataType;
use hape_storage::{Batch, Column};

use crate::expr::{eval, Expr};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of the expression.
    Sum,
    /// Row count (expression ignored).
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Average (sum/count, finished at the end).
    Avg,
}

/// A group-by + aggregate specification.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Indices of the group-by columns (empty = ungrouped).
    pub group_by: Vec<usize>,
    /// `(function, argument)` pairs.
    pub aggs: Vec<(AggFunc, Expr)>,
}

impl AggSpec {
    /// Ungrouped aggregation.
    pub fn ungrouped(aggs: Vec<(AggFunc, Expr)>) -> Self {
        AggSpec { group_by: Vec::new(), aggs }
    }

    /// Grouped aggregation.
    pub fn grouped(group_by: Vec<usize>, aggs: Vec<(AggFunc, Expr)>) -> Self {
        assert!(group_by.len() <= 4, "at most 4 group-by columns supported");
        AggSpec { group_by, aggs }
    }

    /// Approximate compute operations per input row (for cost charging).
    pub fn ops_per_row(&self) -> f64 {
        let expr_ops: f64 = self.aggs.iter().map(|(_, e)| e.ops_per_row()).sum();
        // hash + bucket update per aggregate.
        2.0 + expr_ops + 2.0 * self.aggs.len() as f64
    }
}

/// A composite group key (up to 4 integer-valued columns).
pub type GroupKey = [i64; 4];

/// One accumulator.
#[derive(Debug, Clone, Copy)]
struct Acc {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Acc {
    fn new() -> Self {
        Acc { sum: 0.0, count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    fn update(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    fn merge(&mut self, o: &Acc) {
        self.sum += o.sum;
        self.count += o.count;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    fn finish(&self, f: AggFunc) -> f64 {
        match f {
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as f64,
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
            AggFunc::Avg => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.sum / self.count as f64
                }
            }
        }
    }
}

fn group_value(col: &Column, row: usize) -> i64 {
    match col.data_type() {
        DataType::I32 | DataType::Date => col.as_i32()[row] as i64,
        DataType::I64 => col.as_i64()[row],
        DataType::Str => col.as_codes()[row] as i64,
        DataType::F64 => panic!("cannot group by a float column"),
    }
}

/// Distinct group keys `batch` contributes under `spec`, in first-seen row
/// order. This is the statistic the engine's control plane uses to price
/// cumulative group-table growth per worker (the fused-aggregation
/// random-access term) without folding the actual [`AggState`], which the
/// data plane does later in routed packet order.
pub fn distinct_groups(spec: &AggSpec, batch: &Batch) -> Vec<GroupKey> {
    let n = batch.rows();
    if n == 0 {
        return Vec::new();
    }
    let group_cols: Vec<&Column> = spec.group_by.iter().map(|&i| batch.col(i)).collect();
    let mut seen: std::collections::HashSet<GroupKey> = std::collections::HashSet::new();
    let mut out = Vec::new();
    for row in 0..n {
        let mut key: GroupKey = [0; 4];
        for (slot, col) in key.iter_mut().zip(&group_cols) {
            *slot = group_value(col, row);
        }
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

/// A mergeable (partial) aggregation state.
#[derive(Debug, Clone)]
pub struct AggState {
    spec: AggSpec,
    groups: HashMap<GroupKey, Vec<Acc>>,
    /// Input rows folded in (for observability / cost accounting).
    pub rows_seen: u64,
}

impl AggState {
    /// Fresh state for a spec.
    pub fn new(spec: AggSpec) -> Self {
        AggState { spec, groups: HashMap::new(), rows_seen: 0 }
    }

    /// The spec.
    pub fn spec(&self) -> &AggSpec {
        &self.spec
    }

    /// Number of groups so far.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Fold one batch into the state.
    pub fn update(&mut self, batch: &Batch) {
        let n = batch.rows();
        if n == 0 {
            return;
        }
        self.rows_seen += n as u64;
        // Evaluate aggregate arguments once, vectorised. Bare column
        // references borrow the packet's Arc-backed storage — no copy.
        let args: Vec<std::borrow::Cow<'_, [f64]>> = self
            .spec
            .aggs
            .iter()
            .map(|(f, e)| {
                if *f == AggFunc::Count {
                    std::borrow::Cow::Owned(Vec::new()) // count ignores its argument
                } else {
                    eval(e, batch).into_f64()
                }
            })
            .collect();
        let group_cols: Vec<&Column> =
            self.spec.group_by.iter().map(|&i| batch.col(i)).collect();
        let n_aggs = self.spec.aggs.len();
        #[allow(clippy::needless_range_loop)] // row indexes group_cols and args in lockstep
        for row in 0..n {
            let mut key: GroupKey = [0; 4];
            for (slot, col) in key.iter_mut().zip(&group_cols) {
                *slot = group_value(col, row);
            }
            let accs = self.groups.entry(key).or_insert_with(|| vec![Acc::new(); n_aggs]);
            for (ai, (func, _)) in self.spec.aggs.iter().enumerate() {
                match func {
                    AggFunc::Count => accs[ai].update(1.0),
                    _ => accs[ai].update(args[ai][row]),
                }
            }
        }
    }

    /// Merge another partial state (same spec) into this one.
    pub fn merge(&mut self, other: &AggState) {
        assert_eq!(self.spec.group_by, other.spec.group_by, "merging different specs");
        assert_eq!(self.spec.aggs.len(), other.spec.aggs.len());
        self.rows_seen += other.rows_seen;
        for (key, accs) in &other.groups {
            match self.groups.get_mut(key) {
                Some(mine) => {
                    for (m, o) in mine.iter_mut().zip(accs) {
                        m.merge(o);
                    }
                }
                None => {
                    self.groups.insert(*key, accs.clone());
                }
            }
        }
    }

    /// Finish into `(key, values)` rows, sorted by key for determinism.
    pub fn finish(&self) -> Vec<(GroupKey, Vec<f64>)> {
        let mut out: Vec<(GroupKey, Vec<f64>)> = self
            .groups
            .iter()
            .map(|(k, accs)| {
                let vals =
                    accs.iter().zip(&self.spec.aggs).map(|(a, (f, _))| a.finish(*f)).collect();
                (*k, vals)
            })
            .collect();
        out.sort_by_key(|a| a.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_storage::Column;

    fn batch() -> Batch {
        Batch::new(vec![
            Column::from_i32(vec![1, 2, 1, 2, 1]),
            Column::from_f64(vec![10.0, 20.0, 30.0, 40.0, 50.0]),
        ])
    }

    #[test]
    fn ungrouped_sum_count() {
        let spec = AggSpec::ungrouped(vec![
            (AggFunc::Sum, Expr::col(1)),
            (AggFunc::Count, Expr::col(1)),
            (AggFunc::Avg, Expr::col(1)),
        ]);
        let mut st = AggState::new(spec);
        st.update(&batch());
        let rows = st.finish();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, vec![150.0, 5.0, 30.0]);
    }

    #[test]
    fn grouped_aggregates() {
        let spec = AggSpec::grouped(
            vec![0],
            vec![
                (AggFunc::Sum, Expr::col(1)),
                (AggFunc::Min, Expr::col(1)),
                (AggFunc::Max, Expr::col(1)),
            ],
        );
        let mut st = AggState::new(spec);
        st.update(&batch());
        let rows = st.finish();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0[0], 1);
        assert_eq!(rows[0].1, vec![90.0, 10.0, 50.0]);
        assert_eq!(rows[1].0[0], 2);
        assert_eq!(rows[1].1, vec![60.0, 20.0, 40.0]);
    }

    #[test]
    fn merge_equals_single_pass() {
        let spec = AggSpec::grouped(vec![0], vec![(AggFunc::Sum, Expr::col(1))]);
        let b = batch();
        // Single pass.
        let mut whole = AggState::new(spec.clone());
        whole.update(&b);
        // Two partials over split packets, then merge.
        let mut p1 = AggState::new(spec.clone());
        let mut p2 = AggState::new(spec);
        p1.update(&b.slice(0, 2));
        p2.update(&b.slice(2, 3));
        p1.merge(&p2);
        assert_eq!(whole.finish(), p1.finish());
        assert_eq!(p1.rows_seen, 5);
    }

    #[test]
    fn expression_arguments() {
        // sum(col1 * 2)
        let spec = AggSpec::ungrouped(vec![(
            AggFunc::Sum,
            Expr::mul(Expr::col(1), Expr::LitF64(2.0)),
        )]);
        let mut st = AggState::new(spec);
        st.update(&batch());
        assert_eq!(st.finish()[0].1, vec![300.0]);
    }

    #[test]
    fn empty_batch_is_noop() {
        let spec = AggSpec::ungrouped(vec![(AggFunc::Sum, Expr::col(0))]);
        let mut st = AggState::new(spec);
        st.update(&batch().slice(0, 0));
        assert_eq!(st.n_groups(), 0);
        assert_eq!(st.rows_seen, 0);
    }
}
