//! Order-sensitive stateful aggregates: the behavioral-analytics suite.
//!
//! Sessionization, window funnels, retention cohorts and sequence matching
//! all share one shape: the input is a stream of `(user, timestamp, event)`
//! rows sorted by `(user, timestamp)`, and the operator runs a small state
//! machine *sequentially* over each user's run, emitting one row per user.
//! That sequential per-user dependency is exactly what makes the family
//! GPU-hostile — the chain traversal cannot be latency-hidden the way the
//! paper's streaming scans and hash probes can (§2.1) — so these operators
//! are the stress test for a cost model that claims placement follows from
//! hardware, not fiat: the optimizer must *price* the GPU's random-access
//! penalty ([`gpu_cost`]) against the CPU's cache-friendly run scan
//! ([`cpu_cost`]) and route accordingly.
//!
//! The kernels assume each packet holds whole users (the engine aligns
//! packet boundaries on user changes), so per-packet state machines are
//! exact and the output is independent of packet size, thread count and
//! device placement.

use hape_sim::{CpuCostModel, GpuSim, Region, SimTime};
use hape_storage::table::DataType;
use hape_storage::{Batch, Column};

use crate::gpu::grid_for;

/// GPU slowdown factor for the sequential per-user state walk, applied on
/// top of [`GpuSpec::random_access_ns`](hape_sim::GpuSpec::random_access_ns):
/// one thread owns one user's run, so consecutive state transitions form a
/// serial dependency chain — warp lanes serialise on divergent run lengths
/// and every access drags a full device-memory line it cannot amortise
/// across the warp. The factor models warp-width serialisation (×32) with
/// partial overlap across resident warps.
pub const GPU_SEQ_CHAIN_FACTOR: f64 = 192.0;

/// One order-sensitive per-user aggregate. Column indices are positions in
/// the operator's *input* batch; event codes are dictionary codes resolved
/// at lowering time (an unknown event name resolves to `-1`, which matches
/// no row — the standard missing-dictionary-entry sentinel).
///
/// Every variant emits one output row per user with all-`i64` columns,
/// user first:
///
/// | variant | output columns |
/// |---|---|
/// | `Sessionize` | `user, sessions, events` |
/// | `WindowFunnel` | `user, depth` |
/// | `Retention` | `user, in_cohort, ret_1 … ret_k` |
/// | `SequenceMatch` | `user, matched` |
#[derive(Debug, Clone, PartialEq)]
pub enum StatefulAgg {
    /// Split each user's run into sessions separated by timestamp gaps
    /// exceeding `gap`; emits the session count and the event count.
    Sessionize {
        /// User-id column (integer-typed).
        user_col: usize,
        /// Timestamp column (integer-typed, ascending within a user).
        ts_col: usize,
        /// Maximum intra-session gap between consecutive events.
        gap: i64,
    },
    /// Deepest prefix of `steps` a user completes in order within `window`
    /// of the chain's first step (the ClickHouse `windowFunnel` shape).
    WindowFunnel {
        /// User-id column.
        user_col: usize,
        /// Timestamp column.
        ts_col: usize,
        /// Event-type column (dictionary-encoded strings).
        event_col: usize,
        /// Funnel step event codes, in order.
        steps: Vec<i32>,
        /// Window from the chain's first step to its last.
        window: i64,
    },
    /// Cohort membership and per-period return flags: a user is in the
    /// cohort at the first `cohort_event`; `ret_i` is set when a
    /// `return_events[i]` event lands in `(cohort_ts + i·period,
    /// cohort_ts + (i+1)·period]` — "returned in week i+1".
    Retention {
        /// User-id column.
        user_col: usize,
        /// Timestamp column.
        ts_col: usize,
        /// Event-type column.
        event_col: usize,
        /// The cohort-defining event code.
        cohort_event: i32,
        /// One return event code per period slot.
        return_events: Vec<i32>,
        /// Width of each return window.
        period: i64,
    },
    /// Whether the user's events contain `pattern` as a subsequence.
    SequenceMatch {
        /// User-id column.
        user_col: usize,
        /// Timestamp column.
        ts_col: usize,
        /// Event-type column.
        event_col: usize,
        /// Event codes to match in order.
        pattern: Vec<i32>,
    },
}

impl StatefulAgg {
    /// The user-id column the engine aligns packet boundaries on.
    pub fn user_col(&self) -> usize {
        match self {
            StatefulAgg::Sessionize { user_col, .. }
            | StatefulAgg::WindowFunnel { user_col, .. }
            | StatefulAgg::Retention { user_col, .. }
            | StatefulAgg::SequenceMatch { user_col, .. } => *user_col,
        }
    }

    /// The timestamp column.
    pub fn ts_col(&self) -> usize {
        match self {
            StatefulAgg::Sessionize { ts_col, .. }
            | StatefulAgg::WindowFunnel { ts_col, .. }
            | StatefulAgg::Retention { ts_col, .. }
            | StatefulAgg::SequenceMatch { ts_col, .. } => *ts_col,
        }
    }

    /// The event-type column, when the variant inspects event types.
    pub fn event_col(&self) -> Option<usize> {
        match self {
            StatefulAgg::Sessionize { .. } => None,
            StatefulAgg::WindowFunnel { event_col, .. }
            | StatefulAgg::Retention { event_col, .. }
            | StatefulAgg::SequenceMatch { event_col, .. } => Some(*event_col),
        }
    }

    /// Names of the output columns the aggregate appends after the user
    /// column (the user column keeps its input name).
    pub fn out_names(&self) -> Vec<String> {
        match self {
            StatefulAgg::Sessionize { .. } => vec!["sessions".into(), "events".into()],
            StatefulAgg::WindowFunnel { .. } => vec!["funnel_depth".into()],
            StatefulAgg::Retention { return_events, .. } => {
                let mut names = vec!["in_cohort".to_string()];
                names.extend((1..=return_events.len()).map(|i| format!("ret{i}")));
                names
            }
            StatefulAgg::SequenceMatch { .. } => vec!["matched".into()],
        }
    }

    /// Total output width (user column included).
    pub fn out_width(&self) -> usize {
        1 + self.out_names().len()
    }

    /// Per-user state footprint in bytes (accumulators plus per-level
    /// chain timestamps), the working set the cost arms charge random
    /// accesses against.
    pub fn state_bytes_per_user(&self) -> u64 {
        match self {
            StatefulAgg::Sessionize { .. } => 32,
            StatefulAgg::WindowFunnel { steps, .. } => 16 * (steps.len() as u64 + 2),
            StatefulAgg::Retention { return_events, .. } => {
                16 * (return_events.len() as u64 + 2)
            }
            StatefulAgg::SequenceMatch { pattern, .. } => 16 + 8 * pattern.len() as u64,
        }
    }

    /// Approximate state-machine operations per input row (compare,
    /// branch, accumulator update), for compute charging.
    pub fn ops_per_row(&self) -> f64 {
        match self {
            StatefulAgg::Sessionize { .. } => 4.0,
            StatefulAgg::WindowFunnel { steps, .. } => 4.0 + steps.len() as f64,
            StatefulAgg::Retention { return_events, .. } => 4.0 + return_events.len() as f64,
            StatefulAgg::SequenceMatch { .. } => 4.0,
        }
    }

    /// Short label for plan rendering (`explain`).
    pub fn label(&self) -> String {
        match self {
            StatefulAgg::Sessionize { gap, .. } => format!("sessionize(gap={gap})"),
            StatefulAgg::WindowFunnel { steps, window, .. } => {
                format!("window_funnel(steps={}, window={window})", steps.len())
            }
            StatefulAgg::Retention { return_events, period, .. } => {
                format!("retention(returns={}, period={period})", return_events.len())
            }
            StatefulAgg::SequenceMatch { pattern, .. } => {
                format!("sequence_match(len={})", pattern.len())
            }
        }
    }
}

/// Read an integer-valued column entry as `i64` (string columns read their
/// dictionary code). Panics on `f64` columns — lowering type-checks the
/// operator's inputs, so a float here is a plan-construction bug.
pub fn int_value_at(col: &Column, row: usize) -> i64 {
    match col.data_type() {
        DataType::I32 | DataType::Date => col.as_i32()[row] as i64,
        DataType::I64 => col.as_i64()[row],
        DataType::Str => col.as_codes()[row] as i64,
        DataType::F64 => panic!("stateful aggregate over a float column"),
    }
}

/// Split a batch into packets of roughly `rows_per_packet` rows whose
/// boundaries never cut a user's run in two: each packet ends at the last
/// user boundary at or before the size target, or stretches to the run's
/// end when a single user's history exceeds the target. Concatenating the
/// per-packet [`run_stateful`] outputs therefore equals the whole-batch
/// output — the invariant the engine's packet loop relies on.
pub fn split_user_aligned(
    batch: &Batch,
    user_col: usize,
    rows_per_packet: usize,
) -> Vec<Batch> {
    let n = batch.rows();
    if n == 0 {
        return Vec::new();
    }
    let col = batch.col(user_col);
    let same_user = |i: usize| int_value_at(col, i) == int_value_at(col, i - 1);
    let mut packets = Vec::new();
    let mut cur = 0usize;
    while cur < n {
        let target = (cur + rows_per_packet.max(1)).min(n);
        let mut end = target;
        if end < n {
            while end > cur + 1 && same_user(end) {
                end -= 1;
            }
            if end == cur + 1 && same_user(end) {
                // One user's run exceeds the packet target: extend to the
                // run's end rather than splitting it.
                end = target;
                while end < n && same_user(end) {
                    end += 1;
                }
            }
        }
        packets.push(batch.slice(cur, end - cur));
        cur = end;
    }
    packets
}

fn sessionize_run(ts: &[i64], gap: i64) -> (i64, i64) {
    let mut sessions = 1i64;
    for w in ts.windows(2) {
        if w[1] - w[0] > gap {
            sessions += 1;
        }
    }
    (sessions, ts.len() as i64)
}

fn funnel_run(ts: &[i64], ev: &[i64], steps: &[i32], window: i64) -> i64 {
    let k = steps.len();
    // start[j] = start timestamp of a chain that has matched j steps.
    let mut start: Vec<Option<i64>> = vec![None; k + 1];
    for (&t, &e) in ts.iter().zip(ev) {
        for j in (1..=k).rev() {
            if e != steps[j - 1] as i64 {
                continue;
            }
            if j == 1 {
                // A later chain start leaves more window headroom.
                start[1] = Some(t);
            } else if let Some(s) = start[j - 1] {
                if t - s <= window {
                    start[j] = Some(s);
                }
            }
        }
    }
    (1..=k).rev().find(|&j| start[j].is_some()).unwrap_or(0) as i64
}

fn retention_run(
    ts: &[i64],
    ev: &[i64],
    cohort_event: i32,
    return_events: &[i32],
    period: i64,
) -> Vec<i64> {
    let cohort_ts = ts.iter().zip(ev).find(|(_, &e)| e == cohort_event as i64).map(|(&t, _)| t);
    let mut out = Vec::with_capacity(1 + return_events.len());
    out.push(cohort_ts.is_some() as i64);
    for (i, &re) in return_events.iter().enumerate() {
        let hit = cohort_ts.is_some_and(|t0| {
            let (lo, hi) = (t0 + i as i64 * period, t0 + (i as i64 + 1) * period);
            ts.iter().zip(ev).any(|(&t, &e)| e == re as i64 && t > lo && t <= hi)
        });
        out.push(hit as i64);
    }
    out
}

fn sequence_match_run(ev: &[i64], pattern: &[i32]) -> i64 {
    let mut next = 0usize;
    for &e in ev {
        if next < pattern.len() && e == pattern[next] as i64 {
            next += 1;
        }
    }
    (next == pattern.len()) as i64
}

/// Run a stateful aggregate over one packet sorted by `(user, ts)`: one
/// sequential state machine per user run, one all-`i64` output row per
/// user. Returns the output batch and the number of users seen (the
/// statistic the cost arms replay).
pub fn run_stateful(agg: &StatefulAgg, batch: &Batch) -> (Batch, usize) {
    let n = batch.rows();
    let user = batch.col(agg.user_col());
    let ts_col = batch.col(agg.ts_col());
    let ev_col = agg.event_col().map(|c| batch.col(c));
    let width = agg.out_width();
    let mut out: Vec<Vec<i64>> = vec![Vec::new(); width];
    let mut users = 0usize;
    let mut start = 0usize;
    let mut ts_buf: Vec<i64> = Vec::new();
    let mut ev_buf: Vec<i64> = Vec::new();
    while start < n {
        let uid = int_value_at(user, start);
        let mut end = start + 1;
        while end < n && int_value_at(user, end) == uid {
            end += 1;
        }
        ts_buf.clear();
        ts_buf.extend((start..end).map(|r| int_value_at(ts_col, r)));
        debug_assert!(ts_buf.windows(2).all(|w| w[0] <= w[1]), "run not ts-sorted");
        if let Some(ev) = ev_col {
            ev_buf.clear();
            ev_buf.extend((start..end).map(|r| int_value_at(ev, r)));
        }
        users += 1;
        out[0].push(uid);
        match agg {
            StatefulAgg::Sessionize { gap, .. } => {
                let (sessions, events) = sessionize_run(&ts_buf, *gap);
                out[1].push(sessions);
                out[2].push(events);
            }
            StatefulAgg::WindowFunnel { steps, window, .. } => {
                out[1].push(funnel_run(&ts_buf, &ev_buf, steps, *window));
            }
            StatefulAgg::Retention { cohort_event, return_events, period, .. } => {
                let flags =
                    retention_run(&ts_buf, &ev_buf, *cohort_event, return_events, *period);
                for (slot, v) in out[1..].iter_mut().zip(flags) {
                    slot.push(v);
                }
            }
            StatefulAgg::SequenceMatch { pattern, .. } => {
                out[1].push(sequence_match_run(&ev_buf, pattern));
            }
        }
        start = end;
    }
    let columns = out.into_iter().map(Column::from_i64).collect();
    (Batch { columns, partition: batch.partition }, users)
}

/// CPU cost of a stateful pass over `rows` input rows covering `users`
/// user runs: a SIMD-hostile but cache-friendly sequential scan (the state
/// machine fits registers while a run streams through) plus one random
/// excursion into the per-user state region per run.
pub fn cpu_cost(
    rows: u64,
    users: u64,
    state_bytes: u64,
    ops_per_row: f64,
    model: &CpuCostModel,
) -> SimTime {
    model.compute_simd(rows, ops_per_row) + model.random_accesses(users, state_bytes.max(64))
}

/// GPU cost of the same pass: the packet streams through device memory
/// like any kernel, but every row's state transition is one step of a
/// serial per-user chain — priced as a random device-memory access
/// ([`GpuSpec::random_access_ns`](hape_sim::GpuSpec::random_access_ns))
/// stretched by [`GPU_SEQ_CHAIN_FACTOR`]. This is the term that makes the
/// behavioral suite lose on GPUs in proportion to the hardware model, not
/// by fiat: scale the GPU's memory system up and the penalty shrinks with
/// it.
pub fn gpu_cost(
    sim: &GpuSim,
    region: Region,
    rows: usize,
    row_bytes: u64,
    state_bytes: u64,
    ops_per_row: f64,
) -> SimTime {
    let streamed = sim.launch(&grid_for(rows.max(1)), |blk| {
        let start = blk.block_idx * crate::gpu::ITEMS_PER_BLOCK;
        let end = (start + crate::gpu::ITEMS_PER_BLOCK).min(rows);
        if start >= end {
            return;
        }
        let n = (end - start) as u64;
        blk.global_read_stream(&region, start as u64 * row_bytes, n * row_bytes);
        blk.compute(n, ops_per_row);
    });
    let chain_ns =
        rows as f64 * sim.spec().random_access_ns(state_bytes.max(64)) * GPU_SEQ_CHAIN_FACTOR;
    streamed.time + SimTime::from_ns(chain_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hape_sim::{CpuSpec, Fidelity, GpuSpec};

    /// The fixed reference log the oracle tests hand-compute against:
    /// three users, sorted by (user, ts). Dictionary codes intern in
    /// first-seen order: view=0 cart=1 purchase=2 signup=3 visit=4.
    fn tiny_log() -> Batch {
        #[rustfmt::skip]
        let (users, ts, ev) = (
            vec![1, 1, 1, 1,      2, 2, 2,        3, 3],
            vec![0, 100, 5000, 5200,  0, 50, 9000,    10, 4000],
            vec!["view", "cart", "purchase", "view",
                 "signup", "view", "visit",
                 "view", "purchase"],
        );
        Batch::new(vec![Column::from_i32(users), Column::from_i32(ts), Column::from_strs(ev)])
    }

    #[test]
    fn sessionize_oracle() {
        // gap=1000: user1 splits at 100→5000 (2 sessions, 4 events);
        // user2 splits at 50→9000 (2 sessions, 3 events); user3 splits
        // at 10→4000 (2 sessions, 2 events).
        let agg = StatefulAgg::Sessionize { user_col: 0, ts_col: 1, gap: 1000 };
        let (out, users) = run_stateful(&agg, &tiny_log());
        assert_eq!(users, 3);
        assert_eq!(out.col(0).as_i64(), &[1, 2, 3]);
        assert_eq!(out.col(1).as_i64(), &[2, 2, 2]);
        assert_eq!(out.col(2).as_i64(), &[4, 3, 2]);
    }

    #[test]
    fn sessionize_single_session_when_gap_large() {
        let agg = StatefulAgg::Sessionize { user_col: 0, ts_col: 1, gap: 1 << 30 };
        let (out, _) = run_stateful(&agg, &tiny_log());
        assert_eq!(out.col(1).as_i64(), &[1, 1, 1]);
    }

    #[test]
    fn window_funnel_oracle() {
        // Steps view→cart→purchase. user1: view@0, cart@100, purchase@5000
        // is outside window=1000 of the chain start, so depth 2 — but the
        // view@... no later view restarts the chain, depth stays 2.
        // user2: view@50 only → depth 1. user3: view@10, purchase@4000 →
        // depth 1 (no cart).
        let agg = StatefulAgg::WindowFunnel {
            user_col: 0,
            ts_col: 1,
            event_col: 2,
            steps: vec![0, 1, 2],
            window: 1000,
        };
        let (out, _) = run_stateful(&agg, &tiny_log());
        assert_eq!(out.col(1).as_i64(), &[2, 1, 1]);
        // A wide window completes user1's funnel.
        let agg = StatefulAgg::WindowFunnel {
            user_col: 0,
            ts_col: 1,
            event_col: 2,
            steps: vec![0, 1, 2],
            window: 10_000,
        };
        let (out, _) = run_stateful(&agg, &tiny_log());
        assert_eq!(out.col(1).as_i64(), &[3, 1, 1]);
    }

    #[test]
    fn funnel_restarts_prefer_later_chain_start() {
        // view@0 (chain start), cart@900, view@1000 (restart), cart@1100,
        // purchase@1900: the restarted chain fits window=1000 end to end.
        let b = Batch::new(vec![
            Column::from_i32(vec![7, 7, 7, 7, 7]),
            Column::from_i32(vec![0, 900, 1000, 1100, 1900]),
            Column::from_strs(["view", "cart", "view", "cart", "purchase"]),
        ]);
        let agg = StatefulAgg::WindowFunnel {
            user_col: 0,
            ts_col: 1,
            event_col: 2,
            steps: vec![0, 1, 2],
            window: 1000,
        };
        let (out, _) = run_stateful(&agg, &b);
        assert_eq!(out.col(1).as_i64(), &[3]);
    }

    #[test]
    fn retention_oracle() {
        // Cohort = signup (code 3), returns = [visit, visit], period 5000.
        // user2 signs up at ts 0; visit@9000 lands in window 2
        // (5000, 10000] → ret1=0, ret2=1. Users 1 and 3 never sign up.
        let agg = StatefulAgg::Retention {
            user_col: 0,
            ts_col: 1,
            event_col: 2,
            cohort_event: 3,
            return_events: vec![4, 4],
            period: 5000,
        };
        let (out, _) = run_stateful(&agg, &tiny_log());
        assert_eq!(out.col(1).as_i64(), &[0, 1, 0], "in_cohort");
        assert_eq!(out.col(2).as_i64(), &[0, 0, 0], "ret1");
        assert_eq!(out.col(3).as_i64(), &[0, 1, 0], "ret2");
    }

    #[test]
    fn sequence_match_oracle() {
        // Pattern view→purchase: user1 (view@0 … purchase@5000) and user3
        // (view@10, purchase@4000) match; user2 has no purchase.
        let agg = StatefulAgg::SequenceMatch {
            user_col: 0,
            ts_col: 1,
            event_col: 2,
            pattern: vec![0, 2],
        };
        let (out, _) = run_stateful(&agg, &tiny_log());
        assert_eq!(out.col(1).as_i64(), &[1, 0, 1]);
    }

    #[test]
    fn unknown_event_code_sentinel_matches_nothing() {
        let agg = StatefulAgg::SequenceMatch {
            user_col: 0,
            ts_col: 1,
            event_col: 2,
            pattern: vec![-1],
        };
        let (out, _) = run_stateful(&agg, &tiny_log());
        assert_eq!(out.col(1).as_i64(), &[0, 0, 0]);
    }

    #[test]
    fn output_is_packet_concatenation_of_user_runs() {
        // Splitting the log at a user boundary and concatenating the two
        // packet outputs must equal the whole-batch output — the invariant
        // the engine's aligned packet split relies on.
        let log = tiny_log();
        let agg = StatefulAgg::Sessionize { user_col: 0, ts_col: 1, gap: 1000 };
        let (whole, _) = run_stateful(&agg, &log);
        let (a, _) = run_stateful(&agg, &log.slice(0, 4));
        let (b, _) = run_stateful(&agg, &log.slice(4, 5));
        for c in 0..whole.columns.len() {
            let merged: Vec<i64> =
                a.col(c).as_i64().iter().chain(b.col(c).as_i64()).copied().collect();
            assert_eq!(whole.col(c).as_i64(), &merged[..]);
        }
    }

    #[test]
    fn split_user_aligned_never_cuts_a_run() {
        let log = tiny_log(); // users [1×4, 2×3, 3×2]
        for target in 1..=10 {
            let packets = split_user_aligned(&log, 0, target);
            let total: usize = packets.iter().map(|p| p.rows()).sum();
            assert_eq!(total, log.rows(), "target {target} loses rows");
            for p in &packets {
                assert!(p.rows() > 0, "target {target} yields an empty packet");
                // No packet starts mid-run: its first user differs from the
                // previous packet's last user.
            }
            let mut off = 0usize;
            for p in &packets {
                if off > 0 {
                    assert_ne!(
                        int_value_at(log.col(0), off - 1),
                        int_value_at(log.col(0), off),
                        "target {target} cuts a user run at row {off}"
                    );
                }
                off += p.rows();
            }
        }
        // A single oversized run stays whole.
        let one_user = log.slice(0, 4);
        let packets = split_user_aligned(&one_user, 0, 2);
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].rows(), 4);
    }

    #[test]
    fn empty_batch_yields_no_users() {
        let log = tiny_log();
        let agg = StatefulAgg::Sessionize { user_col: 0, ts_col: 1, gap: 1000 };
        let (out, users) = run_stateful(&agg, &log.slice(0, 0));
        assert_eq!(users, 0);
        assert_eq!(out.rows(), 0);
        assert_eq!(out.columns.len(), 3);
    }

    #[test]
    fn gpu_cost_dwarfs_cpu_cost_on_the_paper_testbed() {
        // The whole point of the suite: per-row sequential state walks are
        // priced far above the CPU's streaming run scan on the GTX 1080's
        // memory system.
        let model = CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12);
        let sim = GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Analytic);
        let rows = 1 << 16;
        let users = rows / 32;
        let cpu = cpu_cost(rows, users, 64 * users, 4.0, &model);
        let gpu = gpu_cost(&sim, Region::at(1 << 20, rows * 12), rows as usize, 12, 64, 4.0);
        assert!(
            gpu.as_ns() > 10.0 * cpu.as_ns(),
            "gpu {gpu} must dwarf cpu {cpu} on stateful work"
        );
    }

    #[test]
    fn labels_and_shapes_render() {
        let s = StatefulAgg::Sessionize { user_col: 0, ts_col: 1, gap: 1800 };
        assert_eq!(s.label(), "sessionize(gap=1800)");
        assert_eq!(s.out_width(), 3);
        assert_eq!(s.state_bytes_per_user(), 32);
        let f = StatefulAgg::WindowFunnel {
            user_col: 0,
            ts_col: 1,
            event_col: 2,
            steps: vec![0, 1, 2],
            window: 3600,
        };
        assert_eq!(f.label(), "window_funnel(steps=3, window=3600)");
        assert_eq!(f.out_names(), vec!["funnel_depth"]);
        assert_eq!(f.event_col(), Some(2));
        let r = StatefulAgg::Retention {
            user_col: 0,
            ts_col: 1,
            event_col: 2,
            cohort_event: 3,
            return_events: vec![4, 4],
            period: 604_800,
        };
        assert_eq!(r.out_width(), 4);
        assert!(r.label().contains("returns=2"));
        let m = StatefulAgg::SequenceMatch {
            user_col: 0,
            ts_col: 1,
            event_col: 2,
            pattern: vec![0, 2],
        };
        assert_eq!(m.label(), "sequence_match(len=2)");
        assert!(m.ops_per_row() > 0.0 && m.state_bytes_per_user() > 0);
    }
}
