//! GPU operator implementations (kernels on the simulator).
//!
//! Operators process the batch block-by-block inside a fused kernel, exactly
//! as the paper's GPU device provider generates them: streaming, coalesced
//! reads of the referenced columns, register-resident intermediates, and
//! scratchpad-based aggregation (one partial aggregate per block, merged on
//! the host side afterwards).

use hape_sim::{BlockCtx, GpuSim, KernelReport, LaunchConfig, Region, SimTime};
use hape_storage::Batch;

use crate::agg::{AggSpec, AggState};
use crate::expr::{eval_bool, Expr};

/// Rows each thread block processes.
pub const ITEMS_PER_BLOCK: usize = 8192;
/// Threads per block for operator kernels.
pub const BLOCK_THREADS: usize = 256;

/// Launch geometry for `rows` items.
pub fn grid_for(rows: usize) -> LaunchConfig {
    LaunchConfig::new(rows.div_ceil(ITEMS_PER_BLOCK).max(1), BLOCK_THREADS, 0)
}

fn bytes_used_per_row(e: &Expr, batch: &Batch) -> u64 {
    e.columns_used().iter().map(|&i| batch.col(i).data_type().width() as u64).sum()
}

/// The rows this block covers.
fn block_range(blk: &BlockCtx<'_>, rows: usize) -> (usize, usize) {
    let start = blk.block_idx * ITEMS_PER_BLOCK;
    let end = (start + ITEMS_PER_BLOCK).min(rows);
    (start, end.max(start))
}

/// Per-block survivor counts of a filter's selection vector — the
/// statistic [`filter_cost`] replays instead of re-evaluating the
/// predicate. `sel` holds the surviving row indices in ascending order.
pub fn block_survivors(sel: &[u32], rows: usize) -> Vec<u32> {
    let mut counts = vec![0u32; rows.div_ceil(ITEMS_PER_BLOCK).max(1)];
    for &i in sel {
        counts[i as usize / ITEMS_PER_BLOCK] += 1;
    }
    counts
}

/// Cost-only replay of [`filter`] from recorded statistics: `rows` input
/// rows whose predicate touches `row_bytes` per row, `out_row_bytes` per
/// surviving row, and the per-block survivor counts the functional pass
/// observed (see [`block_survivors`]). Charges exactly what [`filter`]
/// charges, without re-running the predicate — this is what lets the
/// data plane evaluate a packet once and price it for every device class.
pub fn filter_cost(
    sim: &GpuSim,
    region: Region,
    rows: usize,
    row_bytes: u64,
    out_row_bytes: u64,
    pred_ops: f64,
    survivors: &[u32],
) -> KernelReport {
    sim.launch(&grid_for(rows), |blk| {
        let (start, end) = block_range(blk, rows);
        if start >= end {
            return;
        }
        let n = end - start;
        let selected = survivors.get(blk.block_idx).copied().unwrap_or(0);
        // Coalesced read of referenced columns, register compute, warp-level
        // compaction, coalesced write of survivors.
        blk.global_read_stream(&region, start as u64 * row_bytes, n as u64 * row_bytes);
        blk.compute(n as u64, pred_ops + 2.0);
        blk.global_write_stream(selected as u64 * out_row_bytes);
    })
}

/// GPU filter: evaluates `pred` per block and compacts survivors.
///
/// `region` is the device-memory residence of the input batch.
pub fn filter(
    sim: &GpuSim,
    region: Region,
    batch: &Batch,
    pred: &Expr,
) -> (Batch, KernelReport) {
    let rows = batch.rows();
    let row_bytes = bytes_used_per_row(pred, batch).max(1);
    let out_row_bytes: u64 = batch.columns.iter().map(|c| c.data_type().width() as u64).sum();
    let keep = eval_bool(pred, batch);
    let sel: Vec<u32> =
        keep.iter().enumerate().filter(|(_, &k)| k).map(|(i, _)| i as u32).collect();
    let report = filter_cost(
        sim,
        region,
        rows,
        row_bytes,
        out_row_bytes,
        pred.ops_per_row(),
        &block_survivors(&sel, rows),
    );
    let out = Batch {
        columns: batch.columns.iter().map(|c| c.take(&sel)).collect(),
        partition: batch.partition,
    };
    (out, report)
}

/// Cost-only replay of [`agg_update`]: charges the fused-aggregation
/// kernel for `batch` under `spec` without folding any state — the fold
/// itself runs on the data plane, in routed packet order.
pub fn agg_cost(sim: &GpuSim, region: Region, batch: &Batch, spec: &AggSpec) -> KernelReport {
    let rows = batch.rows();
    let mut row_bytes = 0u64;
    for (_, e) in &spec.aggs {
        row_bytes += bytes_used_per_row(e, batch);
    }
    for &g in &spec.group_by {
        row_bytes += batch.col(g).data_type().width() as u64;
    }
    let row_bytes = row_bytes.max(1);
    // Scratchpad for per-block group table: 64B per group slot, pessimistic
    // 1024 slots.
    let smem = 16 << 10;
    let cfg = LaunchConfig::new(rows.div_ceil(ITEMS_PER_BLOCK).max(1), BLOCK_THREADS, smem);

    sim.launch(&cfg, |blk| {
        let (start, end) = block_range(blk, rows);
        if start >= end {
            return;
        }
        let n = end - start;
        blk.global_read_stream(&region, start as u64 * row_bytes, n as u64 * row_bytes);
        blk.compute(n as u64, spec.ops_per_row());
        // One scratchpad atomic per row per aggregate; group keys map to
        // scratchpad words. With few groups the same-word serialisation is
        // mitigated by warp-level pre-aggregation: model one atomic per warp
        // per aggregate plus one smem update per row.
        let words: Vec<u32> = (0..n.min(1024) as u32).map(|i| i % 241).collect();
        blk.smem_access(&words);
        let warp_atomics: Vec<u32> = (0..(n / 32).max(1) as u32).map(|i| i % 61).collect();
        for _ in &spec.aggs {
            blk.smem_atomic(&warp_atomics);
        }
    })
}

/// GPU aggregation: per-block partial aggregates in the scratchpad, folded
/// into the host-side [`AggState`] (the cross-device merge the router
/// performs in plan-level co-processing).
pub fn agg_update(
    sim: &GpuSim,
    region: Region,
    batch: &Batch,
    state: &mut AggState,
) -> KernelReport {
    let spec = state.spec().clone();
    state.update(batch);
    agg_cost(sim, region, batch, &spec)
}

/// Cost-only helper: a fused streaming pass of `bytes` through a GPU
/// pipeline stage (used for scans and for projections whose outputs stay in
/// registers).
pub fn stream_pass(sim: &GpuSim, region: Region, bytes: u64, ops_per_item: f64) -> SimTime {
    let rows = (bytes / 8).max(1) as usize;
    let report = sim.launch(&grid_for(rows), |blk| {
        let (start, end) = block_range(blk, rows);
        if start >= end {
            return;
        }
        let n = (end - start) as u64;
        blk.global_read_stream(&region, start as u64 * 8, n * 8);
        blk.compute(n, ops_per_item);
    });
    report.time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use hape_sim::{Fidelity, GpuSpec};
    use hape_storage::Column;

    fn sim() -> GpuSim {
        GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Analytic)
    }

    fn batch(n: usize) -> Batch {
        Batch::new(vec![
            Column::from_i32((0..n as i32).collect()),
            Column::from_f64((0..n).map(|i| i as f64).collect()),
        ])
    }

    #[test]
    fn gpu_filter_matches_cpu_semantics() {
        let b = batch(20_000);
        let pred = Expr::lt(Expr::col(0), Expr::LitI32(5_000));
        let region = Region::at(1 << 20, b.bytes());
        let (out, report) = filter(&sim(), region, &b, &pred);
        assert_eq!(out.rows(), 5_000);
        assert_eq!(out.col(0).as_i32()[4_999], 4_999);
        assert!(report.time.as_us() > 0.0);
        assert!(report.stats.dram_bytes > 0.0);
    }

    #[test]
    fn gpu_agg_matches_reference() {
        let b = batch(10_000);
        let spec = AggSpec::ungrouped(vec![
            (AggFunc::Sum, Expr::col(1)),
            (AggFunc::Count, Expr::col(1)),
        ]);
        let mut st = AggState::new(spec);
        let region = Region::at(1 << 20, b.bytes());
        let report = agg_update(&sim(), region, &b, &mut st);
        let rows = st.finish();
        assert_eq!(rows[0].1[0], (0..10_000u64).sum::<u64>() as f64);
        assert_eq!(rows[0].1[1], 10_000.0);
        assert!(report.stats.smem_ops > 0);
    }

    #[test]
    fn filter_time_scales_with_rows() {
        let pred = Expr::lt(Expr::col(0), Expr::LitI32(0));
        let region = Region::at(1 << 20, 1 << 30);
        let (_, small) = filter(&sim(), region, &batch(100_000), &pred);
        let (_, large) = filter(&sim(), region, &batch(4_000_000), &pred);
        assert!(
            large.time.as_secs() > 5.0 * small.time.as_secs(),
            "large={} small={}",
            large.time,
            small.time
        );
    }

    #[test]
    fn stream_pass_near_bandwidth() {
        let s = sim();
        let bytes = 1u64 << 28;
        let t = stream_pass(&s, Region::at(1 << 20, bytes), bytes, 1.0);
        let ideal = bytes as f64 / s.spec().dram_bw;
        assert!(t.as_secs() < ideal * 3.0, "{} vs ideal {}", t.as_secs(), ideal);
    }
}
