//! The §5 co-processing radix join on data that does not fit GPU memory:
//! CPU-side low-fanout co-partitioning, a single pass over PCIe, and
//! load-balanced per-co-partition GPU joins — with 1 and 2 GPUs.
//!
//! ```text
//! cargo run --release --example coprocess_join [million_tuples]
//! ```

use hape::join::{coprocess_join, CoprocessConfig, JoinInput};
use hape::sim::topology::Server;
use hape::storage::datagen::gen_unique_keys;

fn main() {
    let m: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    let n = m << 20;
    println!("generating 2 × {m}M-tuple tables …");
    let r_keys = gen_unique_keys(n, 1);
    let s_keys = gen_unique_keys(n, 2);
    let vals: Vec<u32> = (0..n as u32).collect();
    let r = JoinInput::new(&r_keys, &vals);
    let s = JoinInput::new(&s_keys, &vals);

    // Scale GPU memory so the inputs are genuinely out-of-GPU (the paper's
    // 256M..2G tuples vs 8 GB, preserved proportionally).
    let server = Server::paper_testbed_gpu_mem_scaled(n as f64 / (256 << 20) as f64);
    println!(
        "GPU memory: {} MiB per GPU; inputs: {} MiB total",
        server.gpus[0].dram_capacity >> 20,
        (r.bytes() + s.bytes()) >> 20
    );

    for gpus in [1usize, 2] {
        let cfg = CoprocessConfig { n_gpus: gpus, ..Default::default() };
        let rep = coprocess_join(&server, r, s, &cfg).expect("join failed");
        println!(
            "{} GPU(s): {:>10}  (cpu-partition {}, {} co-partitions of {} bits, \
             pcie busy {}, gpu busy {}, assignment {:?}, matches {})",
            gpus,
            format!("{}", rep.outcome.time),
            rep.cpu_partition_time,
            rep.co_partitions,
            rep.cpu_bits,
            rep.transfer_busy,
            rep.gpu_busy,
            rep.per_gpu_assignments,
            rep.outcome.stats.matches,
        );
    }
}
