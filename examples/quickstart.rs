//! Quickstart: run a join-and-aggregate query on the HAPE engine in all
//! three placements and watch the hybrid configuration beat both.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hape::core::{Catalog, Engine, ExecConfig, JoinAlgo, Pipeline, Placement, QueryPlan, Stage};
use hape::ops::{AggFunc, AggSpec, Expr};
use hape::sim::topology::Server;
use hape::storage::datagen::gen_key_fk_table;

fn main() {
    // The paper's testbed: 2×12-core Xeon + 2× GTX 1080 (simulated).
    let server = Server::paper_testbed();
    let engine = Engine::new(server);

    // A fact table of 4M rows joined against a 64K-row dimension.
    let mut catalog = Catalog::new();
    catalog.register_as("fact", gen_key_fk_table(1 << 22, 1 << 22, 7));
    catalog.register_as("dim", gen_key_fk_table(1 << 16, 1 << 16, 8));

    let plan = QueryPlan::new(
        "quickstart",
        vec![
            Stage::Build { name: "dim_ht".into(), key_col: 0, pipeline: Pipeline::scan("dim") },
            Stage::Stream {
                pipeline: Pipeline::scan("fact")
                    .join("dim_ht", 0, vec![1], JoinAlgo::Partitioned)
                    .aggregate(AggSpec::ungrouped(vec![
                        (AggFunc::Count, Expr::col(0)),
                        (AggFunc::Sum, Expr::col(2)),
                    ])),
            },
        ],
    );

    println!("placement   time        CPU-pkts GPU-pkts  H2D bytes   result(count)");
    for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
        let rep = engine.run(&catalog, &plan, &ExecConfig::new(placement)).unwrap();
        println!(
            "{:<11} {:<11} {:<8} {:<8} {:<11} {}",
            format!("{placement:?}"),
            format!("{}", rep.time),
            rep.packets_cpu,
            rep.packets_gpu,
            rep.h2d_bytes,
            rep.rows[0].1[0],
        );
    }
}
