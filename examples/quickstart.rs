//! Quickstart: describe a join-and-aggregate query against named columns
//! on a [`hape::core::Session`], inspect its placed plan with `explain`
//! (segments, traits, and the inserted Router / MemMove / DeviceCrossing
//! exchanges), run it in all three placements, and watch the hybrid
//! configuration beat both.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hape::core::{ExecConfig, JoinAlgo, Placement, Query, Session};
use hape::ops::{col, AggFunc};
use hape::sim::topology::Server;
use hape::storage::datagen::gen_key_fk_table;

fn main() {
    // The paper's testbed: 2×12-core Xeon + 2× GTX 1080 (simulated).
    let mut session = Session::new(Server::paper_testbed());

    // A fact table of 4M rows joined against a 64K-row dimension.
    session.register_as("fact", gen_key_fk_table(1 << 22, 1 << 22, 7));
    session.register_as("dim", gen_key_fk_table(1 << 16, 1 << 16, 8));

    // Named columns; the engine lowers this to build/stream pipelines with
    // positional indices and pushed-down projections.
    let query = session
        .query("quickstart")
        .from_table("fact")
        .join(Query::scan("dim"), "k", "k", JoinAlgo::Partitioned)
        .agg(vec![(AggFunc::Count, col("k")), (AggFunc::Sum, col("v"))]);

    // The placement pass makes the paper's trait conversions explicit:
    // `explain` renders each stage's segments with their HetTraits and
    // every inserted exchange operator.
    println!("{}", session.explain(&query).expect("quickstart query places"));

    println!("placement   time        CPU-pkts GPU-pkts  H2D bytes   result(count)");
    for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
        let rep = session
            .execute_with(&query, &ExecConfig::new(placement))
            .expect("quickstart query runs");
        println!(
            "{:<11} {:<11} {:<8} {:<8} {:<11} {}",
            format!("{placement:?}"),
            format!("{}", rep.time),
            rep.packets_cpu,
            rep.packets_gpu,
            rep.h2d_bytes,
            rep.rows[0].1[0],
        );
    }
}
