//! TPC-H on HAPE: run Q1/Q5/Q6/Q9* in CPU-only, GPU-only and hybrid modes
//! (the paper's Figure 8 setting) and print the outcome, including the Q9
//! GPU-only out-of-memory failure and its co-processing rescue.
//!
//! The queries are logical `Query` builders over named columns; the session
//! lowers them (with automatic projection pushdown), places them (explicit
//! per-device segments + exchange operators — pass `--explain` to see Q5's
//! placed plan), and interprets the placed plans.
//!
//! ```text
//! cargo run --release --example tpch_hybrid [sf] [--explain]
//! ```

use hape::core::{ExecConfig, JoinAlgo, Placement, Session};
use hape::sim::topology::Server;
use hape::tpch::queries::{q1_query, q5_query, q6_query, q9_query, run_q9_hybrid};

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.05);
    println!("generating TPC-H at SF {sf} …");
    let data = hape::tpch::generate(sf, 42);
    // GPU memory scales with SF so the paper's SF-100 capacity effects hold.
    let mut session = Session::new(Server::tpch_scaled(sf));
    session.register(data.lineitem.clone());
    session.register(data.orders.clone());
    session.register(data.customer.clone());
    session.register(data.supplier.clone());
    session.register(data.partsupp.clone());
    session.register(data.nation.clone());
    session.register(data.region.clone());

    if std::env::args().any(|a| a == "--explain") {
        let q5 = q5_query(JoinAlgo::Partitioned);
        println!(
            "{}",
            session.explain_with(&q5, &ExecConfig::new(Placement::Hybrid)).expect("Q5 places")
        );
    }

    let queries = vec![
        ("Q1", q1_query()),
        ("Q5", q5_query(JoinAlgo::Partitioned)),
        ("Q6", q6_query()),
        ("Q9*", q9_query(JoinAlgo::Partitioned)),
    ];
    println!("{:<5} {:>14} {:>14} {:>14}", "query", "CPU-only", "GPU-only", "Hybrid");
    for (name, query) in &queries {
        let cpu = session
            .execute_with(query, &ExecConfig::new(Placement::CpuOnly))
            .expect("CPU-only runs everything");
        let gpu = session.execute_with(query, &ExecConfig::new(Placement::GpuOnly));
        let hybrid = session.execute_with(query, &ExecConfig::new(Placement::Hybrid));
        let gpu_s = match &gpu {
            Ok(r) => format!("{}", r.time),
            // Q9: hash tables exceed GPU memory.
            Err(_) => "OOM".to_string(),
        };
        let hybrid_s = match hybrid {
            Ok(r) => format!("{}", r.time),
            Err(_) => {
                // Q9: hybrid falls back to intra-operator co-processing.
                let rep = run_q9_hybrid(session.engine(), session.catalog(), &data)
                    .expect("co-processing hybrid runs");
                format!("{} (coproc)", rep.time)
            }
        };
        println!("{:<5} {:>14} {:>14} {:>14}", name, format!("{}", cpu.time), gpu_s, hybrid_s);
    }
}
