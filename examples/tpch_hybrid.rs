//! TPC-H on HAPE: run Q1/Q5/Q6/Q9* in CPU-only, GPU-only and hybrid modes
//! (the paper's Figure 8 setting) and print the outcome, including the Q9
//! GPU-only out-of-memory failure and its co-processing rescue.
//!
//! ```text
//! cargo run --release --example tpch_hybrid [sf]
//! ```

use hape::core::{Engine, ExecConfig, JoinAlgo, Placement};
use hape::sim::topology::Server;
use hape::tpch::queries::{prepare_catalog, q1_plan, q5_plan, q6_plan, q9_plan, run_q9_hybrid};

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.05);
    println!("generating TPC-H at SF {sf} …");
    let data = hape::tpch::generate(sf, 42);
    let catalog = prepare_catalog(&data);
    // GPU memory scales with SF so the paper's SF-100 capacity effects hold.
    let engine = Engine::new(Server::tpch_scaled(sf));

    let queries = vec![
        ("Q1", q1_plan()),
        ("Q5", q5_plan(&data, JoinAlgo::Partitioned)),
        ("Q6", q6_plan()),
        ("Q9*", q9_plan(JoinAlgo::Partitioned)),
    ];
    println!("{:<5} {:>14} {:>14} {:>14}", "query", "CPU-only", "GPU-only", "Hybrid");
    for (name, plan) in &queries {
        let cpu = engine.run(&catalog, plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
        let gpu = engine.run(&catalog, plan, &ExecConfig::new(Placement::GpuOnly));
        let hybrid = engine.run(&catalog, plan, &ExecConfig::new(Placement::Hybrid));
        let gpu_s = match &gpu {
            Ok(r) => format!("{}", r.time),
            Err(e) => {
                let _ = e; // Q9: hash tables exceed GPU memory
                "OOM".to_string()
            }
        };
        let hybrid_s = match hybrid {
            Ok(r) => format!("{}", r.time),
            Err(_) => {
                // Q9: hybrid falls back to intra-operator co-processing.
                let rep = run_q9_hybrid(&engine, &catalog, &data).unwrap();
                format!("{} (coproc)", rep.time)
            }
        };
        println!("{:<5} {:>14} {:>14} {:>14}", name, format!("{}", cpu.time), gpu_s, hybrid_s);
    }
}
