//! TPC-H on HAPE: run Q1/Q5/Q6/Q9* under a CLI-selectable placement list
//! (the paper's Figure 8 setting) and print the outcome, including the Q9
//! GPU-only out-of-memory failure and the cost-based optimizer (`auto`)
//! planning the §5 intra-operator co-processing stage that completes it —
//! no hand-written fallback anywhere.
//!
//! The queries are logical `Query` builders over named columns; the
//! session lowers them (with automatic projection pushdown and memoised
//! shared build sides), optimizes (`auto` only: per-stage device subsets
//! — and probe execution modes — from the hardware model), places them
//! (explicit per-device segments + exchange operators — pass `--explain`
//! to see Q9's placed plan with the co-process stage and cost estimates),
//! and interprets the placed plans.
//!
//! ```text
//! cargo run --release --example tpch_hybrid [sf] [--explain]
//!     [--placements cpu,gpu,hybrid,auto] [--packet-rows <n>] [--threads <n>]
//!     [--concurrency <n>] [--trace <path>] [--profile]
//! ```
//!
//! `--packet-rows` overrides the engine's auto packet-sizing heuristic
//! (`ExecConfig::auto_packet_rows`) and `--threads` pins the data-plane
//! worker pool — both sweepable without recompiling. Simulated times are
//! thread-count-invariant; packet size genuinely changes the routing.
//!
//! `--concurrency N` additionally drives the whole matrix through the
//! concurrent serving layer: every (query, placement) cell is submitted N
//! times to one `SessionServer` sharing the fleet, so the run exercises
//! device-aware admission (GPU-hungry queries queue instead of OOMing the
//! fleet) and the cross-query build cache (repeats skip memoised builds) —
//! and prints the batch summary next to the solo table.
//!
//! `--concurrency` **composes with `--placements`**: the batch contains
//! `queries × placements × N` submissions, so narrowing the placement list
//! shrinks the concurrent workload too (e.g. `--placements auto
//! --concurrency 8` serves 32 optimizer-planned queries and nothing else).
//! Per-cell failures (Q9's manual GPU OOM) stay isolated inside the batch,
//! exactly as in the solo table. `--packet-rows` and `--threads` apply to
//! every submission in both modes.
//!
//! `--trace <path>` re-runs the four queries under the cost-based
//! optimizer with the execution tracing plane attached and writes the
//! Chrome trace JSON (load it in `chrome://tracing` or Perfetto);
//! `--profile` prints the deterministic predicted-vs-observed per-stage
//! profile table from the same traced run.
//!
//! Unknown `--flags` are rejected with an error and the usage synopsis —
//! a typo like `--concurency 4` aborts instead of silently running the
//! solo matrix.

use hape::core::serve::SessionServer;
use hape::core::trace::TraceRecorder;
use hape::core::{ExecConfig, JoinAlgo, PlacedStage, Placement, Session};
use hape::sim::topology::Server;
use hape::tpch::queries::{q1_query, q5_query, q6_query, q9_query};

/// Flags that take a value.
const VALUE_FLAGS: [&str; 5] =
    ["--placements", "--packet-rows", "--threads", "--concurrency", "--trace"];
/// Flags that stand alone.
const BOOL_FLAGS: [&str; 2] = ["--explain", "--profile"];

const USAGE: &str = "usage: tpch_hybrid [sf] [--explain] \
                     [--placements cpu,gpu,hybrid,auto] [--packet-rows <n>] \
                     [--threads <n>] [--concurrency <n>] [--trace <path>] [--profile]";

/// A rejected command line — typed, so a typo aborts with the usage
/// synopsis instead of silently running without the intended flag.
#[derive(Debug)]
enum CliError {
    /// A `--flag` that is neither a value flag nor a boolean flag.
    UnknownFlag(String),
    /// A value flag at the end of the line, with nothing following it.
    MissingValue(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag: {flag}"),
            CliError::MissingValue(flag) => write!(f, "{flag} expects a value"),
        }
    }
}

impl std::error::Error for CliError {}

/// Every argument must be a known flag, a known flag's value, or the
/// positional scale factor.
fn validate_args(args: &[String]) -> Result<(), CliError> {
    let mut is_value = false;
    for a in args {
        if is_value {
            is_value = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            is_value = true;
            continue;
        }
        if BOOL_FLAGS.contains(&a.as_str()) {
            continue;
        }
        if a.starts_with("--") {
            return Err(CliError::UnknownFlag(a.clone()));
        }
    }
    if is_value {
        return Err(CliError::MissingValue(args.last().expect("non-empty").clone()));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = validate_args(&args) {
        eprintln!("{e}\n{USAGE}");
        std::process::exit(2);
    }
    let value_at: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| VALUE_FLAGS.contains(&a.as_str()))
        .map(|(i, _)| i + 1)
        .collect();
    // The scale factor is the first positional argument — skipping flags
    // and their values.
    let sf: f64 = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && !value_at.contains(i))
        .and_then(|(_, a)| a.parse().ok())
        .unwrap_or(0.05);
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1));
    let placements: Vec<Placement> = flag_value("--placements")
        .map(|list| {
            list.split(',')
                .map(|p| p.parse::<Placement>().unwrap_or_else(|e| panic!("{e}")))
                .collect()
        })
        .unwrap_or_else(|| {
            vec![Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid, Placement::Auto]
        });
    let packet_rows: Option<usize> = flag_value("--packet-rows")
        .map(|v| v.parse().unwrap_or_else(|_| panic!("--packet-rows expects a row count")));
    let threads: Option<usize> = flag_value("--threads")
        .map(|v| v.parse().unwrap_or_else(|_| panic!("--threads expects a thread count")));
    let concurrency: Option<usize> = flag_value("--concurrency")
        .map(|v| v.parse().unwrap_or_else(|_| panic!("--concurrency expects a copy count")));
    let trace_path: Option<String> = flag_value("--trace").cloned();
    let profile = args.iter().any(|a| a == "--profile");
    println!("generating TPC-H at SF {sf} …");
    let data = hape::tpch::generate(sf, 42);
    // GPU memory scales with SF so the paper's SF-100 capacity effects hold.
    let mut session = Session::new(Server::tpch_scaled(sf));
    session.register(data.lineitem.clone());
    session.register(data.orders.clone());
    session.register(data.customer.clone());
    session.register(data.supplier.clone());
    session.register(data.partsupp.clone());
    session.register(data.nation.clone());
    session.register(data.region);

    let mk_cfg = |placement: Placement| {
        let mut cfg = ExecConfig::new(placement);
        cfg.packet_rows = packet_rows;
        cfg.threads = threads;
        cfg
    };

    if args.iter().any(|a| a == "--explain") {
        // Q9 under Auto renders the optimizer's headline decision: the
        // stream stage becomes a co-processing stage (CPU co-partition →
        // per-GPU single-pass joins) with its cost decomposition.
        let q9 = q9_query(JoinAlgo::Partitioned);
        let cfg = mk_cfg(*placements.last().unwrap_or(&Placement::Auto));
        println!("{}", session.explain_with(&q9, &cfg).expect("Q9 places"));
    }

    let queries = vec![
        ("Q1", q1_query()),
        ("Q5", q5_query(JoinAlgo::Partitioned)),
        ("Q6", q6_query()),
        ("Q9*", q9_query(JoinAlgo::Partitioned)),
    ];
    print!("{:<5}", "query");
    for p in &placements {
        print!(" {:>16}", p.to_string());
    }
    println!();
    for (name, query) in &queries {
        print!("{name:<5}");
        for &placement in &placements {
            let cfg = mk_cfg(placement);
            // Q9's hash tables exceed GPU memory (§6.4): the manual GPU
            // placements report the OOM, while `auto` plans the §5
            // co-processing stage and completes — flagged in the cell.
            let cell = match session.execute_with(query, &cfg) {
                Ok(r) => {
                    // Only the optimizer can plan a co-processing stage;
                    // manual placements never do, so only `auto` cells pay
                    // the extra placement pass for the tag.
                    let coproc = placement == Placement::Auto
                        && session.place_with(query, &cfg).is_ok_and(|placed| {
                            placed
                                .stages
                                .iter()
                                .any(|s| matches!(s, PlacedStage::CoProcess { .. }))
                        });
                    if coproc {
                        format!("{} (coproc)", r.time)
                    } else {
                        format!("{}", r.time)
                    }
                }
                Err(_) => "OOM".to_string(),
            };
            print!(" {cell:>16}");
        }
        println!();
    }

    // `--concurrency N`: re-run the whole matrix through the serving layer
    // — N copies of every cell interleaved over one shared fleet. Failures
    // (Q9's manual GPU OOM) stay per-query; repeats hit the build cache.
    if let Some(copies) = concurrency {
        let mut server = SessionServer::new(session.clone());
        let mut handles = Vec::new();
        for (name, query) in &queries {
            for &placement in &placements {
                for _ in 0..copies {
                    handles.push((
                        name,
                        placement,
                        server.submit_with(query, &mk_cfg(placement)),
                    ));
                }
            }
        }
        let submitted = handles.len();
        println!("\nserving {submitted} concurrent queries ({copies} copies per cell) …");
        let batch = server.run_all();
        let (mut ok, mut failed) = (0usize, 0usize);
        for (name, placement, handle) in &handles {
            match batch.report(*handle) {
                Ok(_) => ok += 1,
                Err(e) => {
                    failed += 1;
                    println!("  {name}/{placement}: {e}");
                }
            }
        }
        let stats = server.cache_stats();
        println!(
            "completed {ok}/{submitted} ({failed} failed), admission waits {}, \
             cache-served builds {} (hits {}, misses {})",
            batch.total_admission_waits(),
            batch.total_builds_cached(),
            stats.hits,
            stats.misses
        );
    }

    // `--trace` / `--profile`: one traced run of the four queries under
    // the optimizer feeds both exporters. Recording is a pure observer —
    // the traced makespans match the `auto` column above bit-for-bit.
    if trace_path.is_some() || profile {
        let recorder = TraceRecorder::new();
        for (name, query) in &queries {
            let cfg = mk_cfg(Placement::Auto).with_trace(recorder.clone());
            session
                .execute_with(query, &cfg)
                .unwrap_or_else(|e| panic!("{name} completes under auto: {e}"));
        }
        let trace = recorder.snapshot();
        if let Some(path) = &trace_path {
            std::fs::write(path, trace.to_chrome_json())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!(
                "\nwrote {path} ({} spans, {} counters)",
                trace.spans.len(),
                trace.counters.len()
            );
        }
        if profile {
            println!();
            print!("{}", trace.render_profile());
        }
    }
}
