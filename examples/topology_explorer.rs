//! Explore the simulated server: device specs, hardware-conscious planning
//! bounds (TLB-limited CPU fanout, scratchpad-limited GPU fanout), routes
//! and bottleneck bandwidths — everything the paper's algorithms derive
//! their tuning knobs from (§4.1).
//!
//! ```text
//! cargo run --release --example topology_explorer
//! ```

use hape::join::{plan_radix_cpu, plan_radix_gpu};
use hape::sim::topology::{MemNode, Server};

fn main() {
    let server = Server::paper_testbed();
    println!("== server: {} CPU sockets, {} GPUs", server.cpus.len(), server.gpus.len());
    for (i, cpu) in server.cpus.iter().enumerate() {
        println!(
            "cpu{i}: {} — {} cores @ {:.1} GHz, L1d {} KiB, L2 {} KiB, L3 {} MiB, \
             dTLB {} entries, DRAM {:.0} GB/s",
            cpu.name,
            cpu.cores,
            cpu.clock_hz / 1e9,
            cpu.l1d.size >> 10,
            cpu.l2.size >> 10,
            cpu.l3.size >> 20,
            cpu.dtlb.entries,
            cpu.dram_bw / 1e9,
        );
        println!(
            "      max partition fanout/pass = {} (TLB-bounded), cache-resident target = {} KiB",
            cpu.max_partition_fanout(),
            cpu.cache_resident_bytes() >> 10
        );
    }
    for (i, gpu) in server.gpus.iter().enumerate() {
        println!(
            "gpu{i}: {} — {} SMs, {} KiB scratchpad/SM, L1 {} KiB, L2 {} MiB, \
             {:.0} GB/s, {} GiB",
            gpu.name,
            gpu.sms,
            gpu.smem_per_sm >> 10,
            gpu.l1.size >> 10,
            gpu.l2.size >> 20,
            gpu.dram_bw / 1e9,
            gpu.dram_capacity >> 30,
        );
        println!(
            "      max partition fanout/pass = {} (scratchpad-staging-bounded), \
             scratchpad-resident target = {} KiB",
            gpu.max_partition_fanout(),
            gpu.scratchpad_resident_bytes() >> 10
        );
    }

    println!("\n== hardware-conscious radix plans (same skeleton, different bounds):");
    for tuples in [1 << 20, 32 << 20, 128 << 20] {
        let cpu_plan = plan_radix_cpu(tuples, 8, &server.cpus[0]);
        let gpu_plan = plan_radix_gpu(tuples, &server.gpus[0]);
        println!(
            "{:>5}M tuples: CPU passes {:?} ({} partitions) | GPU passes {:?} ({} partitions)",
            tuples >> 20,
            cpu_plan.pass_bits,
            cpu_plan.fanout(),
            gpu_plan.pass_bits,
            gpu_plan.fanout(),
        );
    }

    println!("\n== routes and bottlenecks:");
    let nodes =
        [MemNode::CpuDram(0), MemNode::CpuDram(1), MemNode::GpuDram(0), MemNode::GpuDram(1)];
    for from in nodes {
        for to in nodes {
            if from == to {
                continue;
            }
            let bw = server.route_bandwidth(from, to);
            println!("{from} -> {to}: {:?} @ {:.1} GB/s", server.route(from, to), bw / 1e9);
        }
    }
}
