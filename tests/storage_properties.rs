//! Property tests for the storage substrate: format round-trips, slicing
//! and packet algebra.

use hape::storage::{read_table, write_table, Batch, Column, DataType, Schema, Table};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn binary_format_round_trips(
        ints in prop::collection::vec(any::<i32>(), 0..200),
        floats_seed in any::<u32>(),
    ) {
        let n = ints.len();
        let floats: Vec<f64> =
            (0..n).map(|i| (i as f64) * 0.5 + f64::from(floats_seed % 97)).collect();
        let longs: Vec<i64> = ints.iter().map(|&v| i64::from(v) * 3).collect();
        let t = Table::new(
            "prop",
            Schema::new([
                ("a", DataType::I32),
                ("b", DataType::F64),
                ("c", DataType::I64),
            ]),
            Batch::new(vec![
                Column::from_i32(ints.clone()),
                Column::from_f64(floats.clone()),
                Column::from_i64(longs.clone()),
            ]),
        );
        let mut bytes = Vec::new();
        write_table(&t, &mut bytes).unwrap();
        let rt = read_table(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(rt.column("a").as_i32(), &ints[..]);
        prop_assert_eq!(rt.column("b").as_f64(), &floats[..]);
        prop_assert_eq!(rt.column("c").as_i64(), &longs[..]);
    }

    #[test]
    fn split_concat_identity(
        vals in prop::collection::vec(any::<i32>(), 1..500),
        packet in 1usize..64,
    ) {
        let b = Batch::new(vec![Column::from_i32(vals.clone())]);
        let packets = b.split(packet);
        prop_assert_eq!(packets.iter().map(Batch::rows).sum::<usize>(), vals.len());
        let cols: Vec<Column> = packets.iter().map(|p| p.col(0).clone()).collect();
        let back = Column::concat(&cols);
        prop_assert_eq!(back.as_i32(), &vals[..]);
    }

    #[test]
    fn take_selects_expected(
        vals in prop::collection::vec(any::<i32>(), 1..200),
        idx_seed in any::<u64>(),
    ) {
        let n = vals.len();
        let sel: Vec<u32> =
            (0..n).map(|i| ((i as u64).wrapping_mul(idx_seed | 1) % n as u64) as u32).collect();
        let c = Column::from_i32(vals.clone());
        let taken = c.take(&sel);
        for (out, &i) in taken.as_i32().iter().zip(&sel) {
            prop_assert_eq!(*out, vals[i as usize]);
        }
    }
}
