//! Property-style tests for the storage substrate: format round-trips,
//! slicing and packet algebra.
//!
//! Originally `proptest` generators; the registry is unreachable in this
//! environment, so the same properties run over deterministic seeded case
//! sweeps instead.

use hape::storage::{read_table, write_table, Batch, Column, DataType, Schema, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ints(len: usize, seed: u64) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(i32::MIN..i32::MAX)).collect()
}

#[test]
fn binary_format_round_trips() {
    for case in 0..32u64 {
        let n = (case * 13 % 200) as usize;
        let vals = ints(n, case + 1);
        let floats: Vec<f64> =
            (0..n).map(|i| (i as f64) * 0.5 + f64::from((case as u32) % 97)).collect();
        let longs: Vec<i64> = vals.iter().map(|&v| i64::from(v) * 3).collect();
        let t = Table::new(
            "prop",
            Schema::new([("a", DataType::I32), ("b", DataType::F64), ("c", DataType::I64)]),
            Batch::new(vec![
                Column::from_i32(vals.clone()),
                Column::from_f64(floats.clone()),
                Column::from_i64(longs.clone()),
            ]),
        );
        let mut bytes = Vec::new();
        write_table(&t, &mut bytes).unwrap();
        let rt = read_table(&mut bytes.as_slice()).unwrap();
        assert_eq!(rt.column("a").as_i32(), &vals[..], "case {case}");
        assert_eq!(rt.column("b").as_f64(), &floats[..], "case {case}");
        assert_eq!(rt.column("c").as_i64(), &longs[..], "case {case}");
    }
}

#[test]
fn split_concat_identity() {
    for case in 0..32u64 {
        let n = 1 + (case * 17 % 500) as usize;
        let packet = 1 + (case * 7 % 63) as usize;
        let vals = ints(n, case + 101);
        let b = Batch::new(vec![Column::from_i32(vals.clone())]);
        let packets = b.split(packet);
        assert_eq!(packets.iter().map(Batch::rows).sum::<usize>(), vals.len(), "case {case}");
        let cols: Vec<Column> = packets.iter().map(|p| p.col(0).clone()).collect();
        let back = Column::concat(&cols);
        assert_eq!(back.as_i32(), &vals[..], "case {case}");
    }
}

#[test]
fn take_selects_expected() {
    for case in 0..32u64 {
        let n = 1 + (case * 11 % 200) as usize;
        let vals = ints(n, case + 201);
        let idx_seed = case.wrapping_mul(0x9E3779B9) | 1;
        let sel: Vec<u32> =
            (0..n).map(|i| ((i as u64).wrapping_mul(idx_seed) % n as u64) as u32).collect();
        let c = Column::from_i32(vals.clone());
        let taken = c.take(&sel);
        for (out, &i) in taken.as_i32().iter().zip(&sel) {
            assert_eq!(*out, vals[i as usize], "case {case}");
        }
    }
}
