//! Placement-layer properties.
//!
//! 1. **Placement invariance** (deterministic property sweep): for every
//!    TPC-H query and every placement × routing-policy combination, the
//!    placed plan executes to row-identical results vs. the `CpuOnly`
//!    reference — identical group keys and row counts, values equal up to
//!    the float-fold rounding that different packet partitionings imply.
//! 2. **Explain snapshots**: `Session::explain` renders Q5's placed plan
//!    with the inserted Router / MemMove / DeviceCrossing operators
//!    visible in all three placements.

use hape::core::engine::EngineError;
use hape::core::{ExecConfig, HapeError, JoinAlgo, Placement, Query, RoutingPolicy, Session};
use hape::sim::topology::Server;
use hape::tpch::queries::{q1_query, q5_query, q6_query, q9_query};
use hape::tpch::reference::rows_approx_eq;

const SF: f64 = 0.01;

const PLACEMENTS: [Placement; 3] = [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid];
const POLICIES: [RoutingPolicy; 3] =
    [RoutingPolicy::LoadAware, RoutingPolicy::RoundRobin, RoutingPolicy::HashPartition];

fn tpch_session() -> Session {
    let data = hape::tpch::generate(SF, 31337);
    let mut session = Session::new(Server::tpch_scaled(SF));
    session.register(data.lineitem.clone());
    session.register(data.orders.clone());
    session.register(data.customer.clone());
    session.register(data.supplier.clone());
    session.register(data.partsupp.clone());
    session.register(data.nation.clone());
    session.register(data.region);
    session
}

#[test]
fn every_query_is_placement_and_policy_invariant() {
    let session = tpch_session();
    let queries: Vec<Query> = vec![
        q1_query(),
        q5_query(JoinAlgo::NonPartitioned),
        q5_query(JoinAlgo::Partitioned),
        q6_query(),
    ];
    for query in &queries {
        let reference =
            session.execute_with(query, &ExecConfig::new(Placement::CpuOnly)).unwrap().rows;
        assert!(!reference.is_empty(), "{}: empty CpuOnly reference", query.name);
        for placement in PLACEMENTS {
            for policy in POLICIES {
                let cfg = ExecConfig { policy, ..ExecConfig::new(placement) };
                // Every plan the pass pipeline produces must verify
                // statically clean before it runs.
                session
                    .verify_with(query, &cfg)
                    .unwrap_or_else(|e| panic!("{}/{placement:?}/{policy:?}: {e}", query.name));
                let rep = session
                    .execute_with(query, &cfg)
                    .unwrap_or_else(|e| panic!("{}/{placement:?}/{policy:?}: {e}", query.name));
                assert_eq!(
                    rep.rows.len(),
                    reference.len(),
                    "{}/{placement:?}/{policy:?}: row count",
                    query.name
                );
                for (got, want) in rep.rows.iter().zip(&reference) {
                    assert_eq!(
                        got.0, want.0,
                        "{}/{placement:?}/{policy:?}: group keys",
                        query.name
                    );
                }
                assert!(
                    rows_approx_eq(&rep.rows, &reference),
                    "{}/{placement:?}/{policy:?}: values diverge from CpuOnly",
                    query.name
                );
            }
        }
    }
}

#[test]
fn q9_fails_capacity_on_gpu_placements_under_every_policy() {
    // Q9's hash tables exceed device memory (§6.4): every placement that
    // includes a GPU surfaces the typed capacity error; CPU-only agrees
    // with itself under every policy.
    let session = tpch_session();
    let q9 = q9_query(JoinAlgo::NonPartitioned);
    let reference =
        session.execute_with(&q9, &ExecConfig::new(Placement::CpuOnly)).unwrap().rows;
    for policy in POLICIES {
        for placement in [Placement::GpuOnly, Placement::Hybrid] {
            let cfg = ExecConfig { policy, ..ExecConfig::new(placement) };
            match session.execute_with(&q9, &cfg).unwrap_err() {
                HapeError::Engine(EngineError::GpuMemoryExceeded { required, capacity }) => {
                    assert!(required > capacity, "{placement:?}/{policy:?}");
                }
                e => panic!("{placement:?}/{policy:?}: unexpected error {e}"),
            }
        }
        let cfg = ExecConfig { policy, ..ExecConfig::new(Placement::CpuOnly) };
        let rep = session.execute_with(&q9, &cfg).unwrap();
        assert!(rows_approx_eq(&rep.rows, &reference), "Q9 CpuOnly/{policy:?}");
    }
}

/// The build-stage preamble is placement-independent: builds run CPU-side
/// under every manual placement so their tables end up host-resident for
/// broadcasting. The shared ASIA-nations chain (region → nation) is
/// lowered **once**: both the customer and the supplier builds probe the
/// same `Q5.nation` table (the structural-hash memo in `Query::lower`).
const Q5_BUILD_PREAMBLE: &str = "\
PlacedPlan Q5
stage 0: build Q5.region (key col 0)
  pipeline: scan(region) | filter
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
stage 1: build Q5.nation (key col 0)
  pipeline: scan(nation) | join(Q5.region)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
stage 2: build Q5.customer (key col 0)
  pipeline: scan(customer) | join(Q5.nation)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
stage 3: build Q5.orders (key col 0)
  pipeline: scan(Q5.orders) | filter | join(Q5.customer)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
stage 4: build Q5.supplier (key col 0)
  pipeline: scan(supplier) | join(Q5.nation)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
";

const Q5_STREAM_CPU_ONLY: &str = "\
stage 5: stream
  pipeline: scan(Q5.lineitem) | join(Q5.orders) | join(Q5.supplier) | filter | agg
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
";

const Q5_STREAM_GPU_ONLY: &str = "\
stage 5: stream
  pipeline: scan(Q5.lineitem) | join(Q5.orders) | join(Q5.supplier) | filter | agg
  Router(LoadAware, 1 -> 2)
  segment gpu0: Gpu dop=1 mem=gmem0 packing=Packets
    MemMove(dram0 -> gmem0)
    DeviceCrossing(Cpu -> Gpu)
    MemMove(dram0 -> gmem0, broadcast \"Q5.orders\")
    MemMove(dram0 -> gmem0, broadcast \"Q5.supplier\")
  segment gpu1: Gpu dop=1 mem=gmem1 packing=Packets
    MemMove(dram0 -> gmem1)
    DeviceCrossing(Cpu -> Gpu)
    MemMove(dram0 -> gmem1, broadcast \"Q5.orders\")
    MemMove(dram0 -> gmem1, broadcast \"Q5.supplier\")
";

const Q5_STREAM_HYBRID: &str = "\
stage 5: stream
  pipeline: scan(Q5.lineitem) | join(Q5.orders) | join(Q5.supplier) | filter | agg
  Router(LoadAware, 1 -> 26)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  segment gpu0: Gpu dop=1 mem=gmem0 packing=Packets
    MemMove(dram0 -> gmem0)
    DeviceCrossing(Cpu -> Gpu)
    MemMove(dram0 -> gmem0, broadcast \"Q5.orders\")
    MemMove(dram0 -> gmem0, broadcast \"Q5.supplier\")
  segment gpu1: Gpu dop=1 mem=gmem1 packing=Packets
    MemMove(dram0 -> gmem1)
    DeviceCrossing(Cpu -> Gpu)
    MemMove(dram0 -> gmem1, broadcast \"Q5.orders\")
    MemMove(dram0 -> gmem1, broadcast \"Q5.supplier\")
";

#[test]
fn q5_explain_snapshots_show_exchange_operators() {
    let session = tpch_session();
    let q5 = q5_query(JoinAlgo::NonPartitioned);
    for (placement, stream) in [
        (Placement::CpuOnly, Q5_STREAM_CPU_ONLY),
        (Placement::GpuOnly, Q5_STREAM_GPU_ONLY),
        (Placement::Hybrid, Q5_STREAM_HYBRID),
    ] {
        let text = session.explain_with(&q5, &ExecConfig::new(placement)).unwrap();
        let expected =
            format!("{Q5_BUILD_PREAMBLE}{stream}verified: 6 stages, 0 diagnostics\n");
        assert_eq!(text, expected, "{placement:?} snapshot diverged:\n{text}");
    }
    // The hybrid render makes every HetExchange operator kind visible.
    let hybrid = session.explain_with(&q5, &ExecConfig::new(Placement::Hybrid)).unwrap();
    for needle in ["Router(", "MemMove(", "DeviceCrossing(", "broadcast"] {
        assert!(hybrid.contains(needle), "missing {needle} in hybrid render");
    }
}

#[test]
fn explain_reflects_the_configured_policy() {
    let session = tpch_session();
    let q5 = q5_query(JoinAlgo::NonPartitioned);
    let cfg = ExecConfig {
        policy: RoutingPolicy::HashPartition,
        ..ExecConfig::new(Placement::Hybrid)
    };
    let text = session.explain_with(&q5, &cfg).unwrap();
    // The stream router carries the configured policy; build routers stay
    // load-aware.
    assert!(text.contains("Router(HashPartition, 1 -> 26)"), "{text}");
    assert!(text.contains("Router(LoadAware, 1 -> 24)"), "{text}");
}
