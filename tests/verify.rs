//! The static-verifier mutation self-test corpus.
//!
//! Strategy: start from a plan the pass pipeline itself produced (so it
//! verifies clean — asserted first), corrupt **one** invariant at a
//! time through the placed IR's public fields, and assert the verifier
//! reports the *specific* typed [`DiagnosticKind`] for that corruption
//! class — not merely "some diagnostic". Each test is one corruption
//! class; together they cover all four passes (schema dataflow, trait
//! coherence, device/capacity audit, determinism contracts).
//!
//! The final tests are the positive side: a property sweep asserting a
//! clean verify for every (query × placement × threads) combination the
//! execution suites run, and the diagnostic-rendering contract
//! (locations + pass tags in `Display`, the `explain`-footer shape).

// Test-corpus setup helpers unwrap freely (`allow-unwrap-in-tests` only
// covers `#[test]` bodies, not shared helpers in integration tests).
#![allow(clippy::unwrap_used)]

use hape::core::verify::{check_placed, explain_footer, DiagnosticKind, Pass};
use hape::core::{
    Exchange, ExecConfig, JoinAlgo, LoweredQuery, PipeOp, PlacedPlan, PlacedStage, Placement,
    Query, Session,
};
use hape::ops::{Expr, StatefulAgg};
use hape::sim::topology::{DeviceId, MemNode, Server};
use hape::tpch::events::{behavioral_queries, generate_events};
use hape::tpch::queries::{q1_query, q5_query, q6_query};

const SF: f64 = 0.01;

fn tpch_session() -> Session {
    let data = hape::tpch::generate(SF, 31337);
    let mut session = Session::new(Server::tpch_scaled(SF));
    session.register(data.lineitem.clone());
    session.register(data.orders.clone());
    session.register(data.customer.clone());
    session.register(data.supplier.clone());
    session.register(data.partsupp.clone());
    session.register(data.nation.clone());
    session.register(data.region);
    session
}

/// Q5 lowered + placed under `placement`, asserted clean before any
/// mutation (a corrupted seed would make every test vacuous).
fn q5_placed(session: &Session, placement: Placement) -> (LoweredQuery, PlacedPlan) {
    let q5 = q5_query(JoinAlgo::NonPartitioned);
    let lowered = session.lower(&q5).unwrap();
    let placed = session.place_with(&q5, &ExecConfig::new(placement)).unwrap();
    assert!(
        check_placed(&placed, &lowered.catalog, &session.engine().server).is_empty(),
        "seed plan must verify clean before mutation"
    );
    (lowered, placed)
}

fn diags(session: &Session, lowered: &LoweredQuery, placed: &PlacedPlan) -> Vec<String> {
    check_placed(placed, &lowered.catalog, &session.engine().server)
        .iter()
        .map(ToString::to_string)
        .collect()
}

fn kinds(
    session: &Session,
    lowered: &LoweredQuery,
    placed: &PlacedPlan,
) -> Vec<(Pass, DiagnosticKind)> {
    check_placed(placed, &lowered.catalog, &session.engine().server)
        .into_iter()
        .map(|d| (d.pass, d.kind))
        .collect()
}

/// The Q5 stream stage (index 5) as mutable parts.
fn stream_parts(
    placed: &mut PlacedPlan,
) -> (&mut hape::core::Pipeline, &mut Option<Exchange>, &mut Vec<hape::core::Segment>) {
    match placed.stages.last_mut().unwrap() {
        PlacedStage::Stream { pipeline, router, segments } => (pipeline, router, segments),
        other => panic!("Q5's last stage should be the stream, got {other:?}"),
    }
}

fn gpu_segment(segments: &mut [hape::core::Segment]) -> &mut hape::core::Segment {
    segments.iter_mut().find(|s| s.target.is_gpu()).expect("a GPU segment")
}

// ===================== pass 1: schema dataflow =====================

#[test]
fn mutation_unknown_source_table() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    stream_parts(&mut placed).0.source = "ghost".to_string();
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::SchemaDataflow
            && matches!(k, DiagnosticKind::UnknownSource { table } if table == "ghost")),
        "{ks:?}"
    );
}

#[test]
fn mutation_filter_references_dropped_column() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    stream_parts(&mut placed).0.ops.insert(0, PipeOp::Filter(Expr::col(99)));
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::SchemaDataflow
            && matches!(
                k,
                DiagnosticKind::ColumnOutOfRange { column: 99, context: "filter", .. }
            )),
        "{ks:?}"
    );
}

#[test]
fn mutation_probe_key_becomes_f64_after_projection() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    // A same-width all-f64 projection ahead of the first probe: the key
    // column stays in range but loses its integer type.
    let width = lowered.catalog.get("Q5.lineitem").unwrap().schema.fields.len();
    let reshape = PipeOp::Project((0..width).map(Expr::col).collect());
    stream_parts(&mut placed).0.ops.insert(0, reshape);
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::SchemaDataflow
            && matches!(
                k,
                DiagnosticKind::ProbeKeyType { found: hape::storage::DataType::F64, .. }
            )),
        "{ks:?}"
    );
}

#[test]
fn mutation_probe_payload_beyond_build_width() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    let (pipeline, _, _) = stream_parts(&mut placed);
    let Some(PipeOp::JoinProbe { build_payload_cols, .. }) =
        pipeline.ops.iter_mut().find(|op| matches!(op, PipeOp::JoinProbe { .. }))
    else {
        panic!("stream pipeline probes")
    };
    build_payload_cols.push(99);
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::SchemaDataflow
            && matches!(k, DiagnosticKind::PayloadOutOfRange { column: 99, .. })),
        "{ks:?}"
    );
}

#[test]
fn mutation_probe_of_unbuilt_table() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    let (pipeline, _, _) = stream_parts(&mut placed);
    let Some(PipeOp::JoinProbe { ht, .. }) =
        pipeline.ops.iter_mut().find(|op| matches!(op, PipeOp::JoinProbe { .. }))
    else {
        panic!("stream pipeline probes")
    };
    *ht = "Q5.unbuilt".to_string();
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::SchemaDataflow
            && matches!(k, DiagnosticKind::ProbeUnbuilt { ht } if ht == "Q5.unbuilt")),
        "{ks:?}"
    );
}

#[test]
fn mutation_build_stage_that_aggregates() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    let agg = stream_parts(&mut placed).0.agg.clone();
    let PlacedStage::Build { pipeline, .. } = &mut placed.stages[0] else {
        panic!("stage 0 is a build")
    };
    pipeline.agg = agg;
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::SchemaDataflow
            && matches!(k, DiagnosticKind::BuildAggregates { .. })),
        "{ks:?}"
    );
}

#[test]
fn mutation_stream_stage_without_aggregation() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    stream_parts(&mut placed).0.agg = None;
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter()
            .any(|(p, k)| *p == Pass::SchemaDataflow && *k == DiagnosticKind::StreamMissingAgg),
        "{ks:?}"
    );
}

#[test]
fn mutation_plan_with_no_stream_stage() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    placed.stages.retain(|s| matches!(s, PlacedStage::Build { .. }));
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::SchemaDataflow
            && matches!(k, DiagnosticKind::NotExactlyOneStream { streams: 0 })),
        "{ks:?}"
    );
}

#[test]
fn mutation_group_by_beyond_stream_width() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    stream_parts(&mut placed).0.agg.as_mut().unwrap().group_by.push(99);
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::SchemaDataflow
            && matches!(
                k,
                DiagnosticKind::ColumnOutOfRange { column: 99, context: "group-by", .. }
            )),
        "{ks:?}"
    );
}

// ===================== pass 2: trait coherence =====================

#[test]
fn mutation_dropped_streaming_mem_move() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::Hybrid);
    let (_, _, segments) = stream_parts(&mut placed);
    gpu_segment(segments)
        .exchanges
        .retain(|x| !matches!(x, Exchange::MemMove { table: None, .. }));
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::TraitCoherence
            && matches!(k, DiagnosticKind::MissingExchange { expected } if expected.starts_with("MemMove"))),
        "{ks:?}"
    );
}

#[test]
fn mutation_dropped_device_crossing() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::Hybrid);
    let (_, _, segments) = stream_parts(&mut placed);
    gpu_segment(segments).exchanges.retain(|x| !matches!(x, Exchange::DeviceCrossing { .. }));
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::TraitCoherence
            && matches!(k, DiagnosticKind::MissingExchange { expected } if expected.starts_with("DeviceCrossing"))),
        "{ks:?}"
    );
}

#[test]
fn mutation_dropped_broadcast() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::Hybrid);
    let (_, _, segments) = stream_parts(&mut placed);
    gpu_segment(segments)
        .exchanges
        .retain(|x| !matches!(x, Exchange::MemMove { table: Some(t), .. } if t == "Q5.orders"));
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::TraitCoherence
            && matches!(k, DiagnosticKind::MissingBroadcast { ht } if ht == "Q5.orders")),
        "{ks:?}"
    );
}

#[test]
fn mutation_duplicate_broadcast() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::Hybrid);
    let (_, _, segments) = stream_parts(&mut placed);
    let seg = gpu_segment(segments);
    let dup = seg.exchanges.iter().find(|x| x.is_broadcast()).unwrap().clone();
    seg.exchanges.push(dup);
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::TraitCoherence
            && matches!(k, DiagnosticKind::UnexpectedBroadcast { .. })),
        "{ks:?}"
    );
}

#[test]
fn mutation_exchange_on_a_cpu_segment_is_dead() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    let (_, _, segments) = stream_parts(&mut placed);
    // A CPU segment shares the source's traits end to end: any exchange
    // on its edge converts nothing.
    segments[0].exchanges.push(Exchange::MemMove {
        from: MemNode::CpuDram(0),
        to: MemNode::CpuDram(0),
        table: None,
    });
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::TraitCoherence
            && matches!(k, DiagnosticKind::DeadExchange { .. })),
        "{ks:?}"
    );
}

#[test]
fn mutation_corrupted_segment_dop() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    let (_, _, segments) = stream_parts(&mut placed);
    segments[0].traits.dop = 99;
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::TraitCoherence
            && matches!(k, DiagnosticKind::TraitsMismatch { found, .. } if found.dop == 99)),
        "{ks:?}"
    );
}

#[test]
fn mutation_removed_router() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    *stream_parts(&mut placed).1 = None;
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::TraitCoherence
            && matches!(k, DiagnosticKind::MissingRouter { total_dop } if *total_dop > 1)),
        "{ks:?}"
    );
}

#[test]
fn mutation_router_with_parallel_producer_side() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    let (_, router, _) = stream_parts(&mut placed);
    let Some(Exchange::Router { from_dop, .. }) = router else { panic!("stream routes") };
    *from_dop = 3;
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::TraitCoherence
            && matches!(k, DiagnosticKind::RouterDopMismatch { from_dop: 3, .. })),
        "{ks:?}"
    );
}

// ================= pass 3: device & capacity audit =================

#[test]
fn mutation_segment_on_absent_device() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    let (_, _, segments) = stream_parts(&mut placed);
    segments[0].target = DeviceId::Gpu(7);
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::DeviceAudit
            && matches!(k, DiagnosticKind::DeviceNotPresent { device: DeviceId::Gpu(7) })),
        "{ks:?}"
    );
}

#[test]
fn broadcast_over_capacity_is_predicted_statically() {
    // Not a hand-mutation: shrink the GPUs until Q5's broadcast tables
    // (with working space) cannot fit, and the verifier must report the
    // same §6.4 capacity violation the engine refuses with at runtime.
    let data = hape::tpch::generate(SF, 31337);
    let mut session = Session::new(Server::paper_testbed_gpu_mem_scaled(1.0 / 1048576.0));
    session.register(data.lineitem.clone());
    session.register(data.orders.clone());
    session.register(data.customer.clone());
    session.register(data.supplier.clone());
    session.register(data.nation.clone());
    session.register(data.region);
    let q5 = q5_query(JoinAlgo::NonPartitioned);
    let lowered = session.lower(&q5).unwrap();
    let placed = session.place_with(&q5, &ExecConfig::new(Placement::GpuOnly)).unwrap();
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::DeviceAudit
            && matches!(k, DiagnosticKind::BroadcastOverCapacity { required, capacity, .. }
                if required > capacity)),
        "{ks:?}"
    );
    // The runtime verdict agrees.
    assert!(session.execute_with(&q5, &ExecConfig::new(Placement::GpuOnly)).is_err());
}

/// Rebuild Q5's stream stage as a co-process stage with the given shape.
fn coprocessed(mut placed: PlacedPlan, ht: &str, gpus: Vec<DeviceId>) -> PlacedPlan {
    let PlacedStage::Stream { pipeline, router, segments } = placed.stages.pop().unwrap()
    else {
        panic!("Q5's last stage is the stream")
    };
    placed.stages.push(PlacedStage::CoProcess {
        pipeline,
        ht: ht.to_string(),
        router,
        segments,
        gpus,
    });
    placed
}

#[test]
fn mutation_coprocess_without_gpu_lanes() {
    let session = tpch_session();
    let (lowered, placed) = q5_placed(&session, Placement::CpuOnly);
    let placed = coprocessed(placed, "Q5.supplier", Vec::new());
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter()
            .any(|(p, k)| *p == Pass::DeviceAudit && *k == DiagnosticKind::CoProcessNoGpuLane),
        "{ks:?}"
    );
}

#[test]
fn mutation_coprocess_lane_on_absent_gpu() {
    let session = tpch_session();
    let (lowered, placed) = q5_placed(&session, Placement::CpuOnly);
    let placed = coprocessed(placed, "Q5.supplier", vec![DeviceId::Gpu(9)]);
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::DeviceAudit
            && matches!(k, DiagnosticKind::DeviceNotPresent { device: DeviceId::Gpu(9) })),
        "{ks:?}"
    );
}

#[test]
fn mutation_coprocess_table_is_not_the_final_probe() {
    let session = tpch_session();
    let (lowered, placed) = q5_placed(&session, Placement::CpuOnly);
    let placed = coprocessed(placed, "Q5.orders", vec![DeviceId::Gpu(0)]);
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::DeviceAudit
            && matches!(k, DiagnosticKind::CoProcessFinalProbeMismatch { ht } if ht == "Q5.orders")),
        "{ks:?}"
    );
}

#[test]
fn mutation_coprocess_prefix_with_gpu_segment() {
    let session = tpch_session();
    let (lowered, placed) = q5_placed(&session, Placement::Hybrid);
    let placed = coprocessed(placed, "Q5.supplier", vec![DeviceId::Gpu(0)]);
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::DeviceAudit
            && matches!(k, DiagnosticKind::CoProcessGpuSegment { .. })),
        "{ks:?}"
    );
}

// ================= pass 4: determinism contracts =================

fn behavioral_session() -> Session {
    let mut session = Session::new(Server::paper_testbed());
    session.register(generate_events(2_000, 7171));
    session
}

fn behavioral_placed(session: &Session, idx: usize) -> (LoweredQuery, PlacedPlan) {
    let q = &behavioral_queries()[idx];
    let lowered = session.lower(q).unwrap();
    let placed = session.place(q).unwrap();
    assert!(
        check_placed(&placed, &lowered.catalog, &session.engine().server).is_empty(),
        "behavioral seed plan must verify clean before mutation"
    );
    (lowered, placed)
}

fn stateful_op(placed: &mut PlacedPlan) -> &mut StatefulAgg {
    for stage in &mut placed.stages {
        if let PlacedStage::Stream { pipeline, .. } = stage {
            for op in &mut pipeline.ops {
                if let PipeOp::Stateful(agg) = op {
                    return agg;
                }
            }
        }
    }
    panic!("behavioral plan has a stateful op")
}

#[test]
fn mutation_stateful_after_a_reshaping_projection() {
    let session = behavioral_session();
    let (lowered, mut placed) = behavioral_placed(&session, 0);
    for stage in &mut placed.stages {
        if let PlacedStage::Stream { pipeline, .. } = stage {
            let at = pipeline
                .ops
                .iter()
                .position(|op| matches!(op, PipeOp::Stateful(_)))
                .expect("stateful op");
            let width = lowered.catalog.get(&pipeline.source).unwrap().schema.fields.len();
            pipeline.ops.insert(at, PipeOp::Project((0..width).map(Expr::col).collect()));
        }
    }
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter()
            .any(|(p, k)| *p == Pass::SchemaDataflow
                && *k == DiagnosticKind::StatefulAfterReshape),
        "{ks:?}"
    );
}

#[test]
fn mutation_stateful_event_column_mistyped() {
    let session = behavioral_session();
    // B2 is the funnel: the only suite query with an event column.
    let (lowered, mut placed) = behavioral_placed(&session, 1);
    {
        let StatefulAgg::WindowFunnel { ts_col, event_col, .. } = stateful_op(&mut placed)
        else {
            panic!("B2 is a window funnel")
        };
        *event_col = *ts_col; // integer-typed, not a dictionary string
    }
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::SchemaDataflow
            && matches!(k, DiagnosticKind::StatefulColumnType { role: "event", .. })),
        "{ks:?}"
    );
}

#[test]
fn mutation_stateful_alignment_column_outside_source() {
    let session = behavioral_session();
    let (lowered, mut placed) = behavioral_placed(&session, 0);
    {
        let StatefulAgg::Sessionize { user_col, .. } = stateful_op(&mut placed) else {
            panic!("B1 sessionizes")
        };
        *user_col = 99; // breaks the user-aligned packetization contract
    }
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::Determinism
            && matches!(k, DiagnosticKind::StatefulAlignmentInvalid { user_col: 99, .. })),
        "{ks:?}"
    );
}

#[test]
fn mutation_router_barrier_undercoverage() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    let (_, router, _) = stream_parts(&mut placed);
    let Some(Exchange::Router { to_dop, .. }) = router else { panic!("stream routes") };
    *to_dop -= 1; // one routed worker would escape the stage barrier
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter().any(|(p, k)| *p == Pass::Determinism
            && matches!(k, DiagnosticKind::BarrierCoverage { .. })),
        "{ks:?}"
    );
}

#[test]
fn mutation_zero_packet_rows() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::CpuOnly);
    placed.packet_rows = Some(0);
    let ks = kinds(&session, &lowered, &placed);
    assert!(
        ks.iter()
            .any(|(p, k)| *p == Pass::Determinism && *k == DiagnosticKind::InvalidPacketRows),
        "{ks:?}"
    );
}

// ===================== rendering contracts =====================

#[test]
fn diagnostics_carry_locations_and_pass_tags() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::Hybrid);
    let (_, _, segments) = stream_parts(&mut placed);
    gpu_segment(segments).exchanges.clear();
    let rendered = diags(&session, &lowered, &placed);
    assert!(!rendered.is_empty());
    // Each line locates the finding and names the pass, explain-style.
    assert!(
        rendered.iter().any(|d| d.starts_with("stage 5 segment gpu")
            && d.contains("[trait-coherence]")
            && d.contains("missing exchange")),
        "{rendered:?}"
    );
}

#[test]
fn explain_footer_renders_diagnostics_on_a_broken_plan() {
    let session = tpch_session();
    let (lowered, mut placed) = q5_placed(&session, Placement::Hybrid);
    placed.packet_rows = Some(0);
    let footer = explain_footer(&placed, &lowered.catalog, &session.engine().server);
    assert!(footer.starts_with("verified: 6 stages, 1 diagnostic\n"), "{footer}");
    assert!(
        footer.contains("  plan: [determinism] packet_rows = 0 cannot make progress"),
        "{footer}"
    );
}

#[test]
fn verify_error_display_lists_every_finding() {
    let session = tpch_session();
    let q5 = q5_query(JoinAlgo::NonPartitioned);
    let lowered = session.lower(&q5).unwrap();
    let mut placed = session.place_with(&q5, &ExecConfig::new(Placement::Hybrid)).unwrap();
    let (_, _, segments) = stream_parts(&mut placed);
    gpu_segment(segments).exchanges.clear();
    let err =
        hape::core::verify::verify_placed(&placed, &lowered.catalog, &session.engine().server)
            .unwrap_err();
    let text = err.to_string();
    assert!(text.starts_with("verify Q5: "), "{text}");
    assert_eq!(
        text.lines().count(),
        1 + err.diagnostics.len(),
        "one header plus one line per finding:\n{text}"
    );
}

// ================= positive property sweep =================

#[test]
fn every_query_placement_and_thread_combo_verifies_clean() {
    let session = tpch_session();
    let queries: Vec<Query> = vec![
        q1_query(),
        q5_query(JoinAlgo::NonPartitioned),
        q5_query(JoinAlgo::Partitioned),
        q6_query(),
    ];
    let placements =
        [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid, Placement::Auto];
    for query in &queries {
        for placement in placements {
            for threads in [None, Some(1), Some(4)] {
                let cfg = ExecConfig { threads, ..ExecConfig::new(placement) };
                session.verify_with(query, &cfg).unwrap_or_else(|e| {
                    panic!("{}/{placement:?}/threads {threads:?}: {e}", query.name)
                });
            }
        }
    }
    let behavioral = behavioral_session();
    for query in &behavioral_queries() {
        for placement in placements {
            let cfg = ExecConfig::new(placement);
            behavioral
                .verify_with(query, &cfg)
                .unwrap_or_else(|e| panic!("{}/{placement:?}: {e}", query.name));
        }
    }
}
