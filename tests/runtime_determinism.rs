//! Determinism of the two-plane runtime across data-plane thread counts.
//!
//! The engine's control plane (router + sim-time accounting) runs
//! sequentially on the coordinator while the data plane (kernels, per-class
//! pricing, per-worker aggregation folds) fans out over the `runtime` pool.
//! The guarantee under test: **`ExecConfig::threads` is a pure wall-clock
//! knob** — result rows, simulated makespans, packet routing counts and
//! h2d traffic are bit-identical for threads ∈ {1, 2, 8} across the TPC-H
//! × placement matrix, including Q9's optimizer-planned co-processing
//! stage, and typed failures (Q9's §6.4 GPU OOM) reproduce identically
//! too. A tiny-packet stress run hammers the pool with thousands of
//! packets per stage to shake out ordering bugs.

use hape::core::{ExecConfig, JoinAlgo, Placement, Query, QueryReport, Session};
use hape::ops::{col, AggFunc};
use hape::sim::topology::Server;
use hape::storage::datagen::gen_key_fk_table;
use hape::tpch::queries::{q1_query, q5_query, q6_query, q9_query};

const SF: f64 = 0.01;
const THREADS: [usize; 3] = [1, 2, 8];

fn tpch_session() -> Session {
    let data = hape::tpch::generate(SF, 7170);
    let mut session = Session::new(Server::tpch_scaled(SF));
    session.register(data.lineitem.clone());
    session.register(data.orders.clone());
    session.register(data.customer.clone());
    session.register(data.supplier.clone());
    session.register(data.partsupp.clone());
    session.register(data.nation.clone());
    session.register(data.region);
    session
}

/// Assert everything a report exposes is independent of the thread count.
fn assert_reports_identical(got: &QueryReport, want: &QueryReport, ctx: &str) {
    assert_eq!(got.rows, want.rows, "{ctx}: rows");
    assert_eq!(got.time, want.time, "{ctx}: makespan");
    assert_eq!(got.cpu_busy, want.cpu_busy, "{ctx}: cpu busy");
    assert_eq!(got.gpu_busy, want.gpu_busy, "{ctx}: gpu busy");
    assert_eq!(got.h2d_bytes, want.h2d_bytes, "{ctx}: h2d bytes");
    assert_eq!(got.packets_cpu, want.packets_cpu, "{ctx}: cpu packets");
    assert_eq!(got.packets_gpu, want.packets_gpu, "{ctx}: gpu packets");
}

#[test]
fn simulated_results_are_bit_identical_across_thread_counts() {
    let session = tpch_session();
    let queries: Vec<Query> = vec![
        q1_query(),
        q5_query(JoinAlgo::NonPartitioned),
        q5_query(JoinAlgo::Partitioned),
        q6_query(),
        q9_query(JoinAlgo::NonPartitioned),
    ];
    let placements =
        [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid, Placement::Auto];
    for query in &queries {
        for placement in placements {
            let mut reference: Option<Result<QueryReport, String>> = None;
            for threads in THREADS {
                let cfg = ExecConfig::new(placement).with_threads(threads);
                let outcome = session.execute_with(query, &cfg).map_err(|e| format!("{e}"));
                match (&reference, &outcome) {
                    (None, _) => reference = Some(outcome),
                    (Some(Ok(want)), Ok(got)) => {
                        let ctx = format!("{}/{placement:?} threads={threads}", query.name);
                        assert_reports_identical(got, want, &ctx);
                    }
                    (Some(Err(want)), Err(got)) => {
                        assert_eq!(
                            got, want,
                            "{}/{placement:?}: error diverged at threads={threads}",
                            query.name
                        );
                    }
                    (Some(want), got) => panic!(
                        "{}/{placement:?}: success/failure flipped at threads={threads}: \
                         {want:?} vs {got:?}",
                        query.name
                    ),
                }
            }
        }
    }
}

#[test]
fn q9_coprocess_stage_is_thread_count_invariant() {
    // Q9 under Auto exercises every runtime path at once: parallel build
    // stages, the CPU prefix through the packet loop, the co-processing
    // join, and the chunked parallel fold.
    let session = tpch_session();
    let q9 = q9_query(JoinAlgo::NonPartitioned);
    let mut reports = Vec::new();
    for threads in THREADS {
        let cfg = ExecConfig::new(Placement::Auto).with_threads(threads);
        reports.push(session.execute_with(&q9, &cfg).expect("Q9 Auto completes"));
    }
    assert!(reports[0].packets_gpu > 0, "co-partitions must reach the GPUs");
    for rep in &reports[1..] {
        assert_eq!(rep.rows, reports[0].rows);
        assert_eq!(rep.time, reports[0].time);
        assert_eq!(rep.h2d_bytes, reports[0].h2d_bytes);
        assert_eq!(rep.packets_gpu, reports[0].packets_gpu);
    }
}

#[test]
fn concurrent_serving_is_thread_count_invariant() {
    // The serving layer interleaves many queries over the shared fleet;
    // its per-query sim-time isolation must compose with the two-plane
    // runtime's guarantee: the whole batch's reports are bit-identical at
    // any data-plane thread count.
    use hape::core::serve::SessionServer;
    let session = tpch_session();
    let queries: Vec<Query> = vec![q1_query(), q5_query(JoinAlgo::Partitioned), q6_query()];
    let placements = [Placement::CpuOnly, Placement::Hybrid, Placement::Auto];
    let mut reference: Option<Vec<QueryReport>> = None;
    for threads in THREADS {
        let mut server = SessionServer::new(session.clone());
        let mut handles = Vec::new();
        for query in &queries {
            for placement in placements {
                let cfg = ExecConfig::new(placement).with_threads(threads);
                handles.push(server.submit_with(query, &cfg));
            }
        }
        let batch = server.run_all();
        let reports: Vec<QueryReport> = handles
            .iter()
            .map(|&h| batch.report(h).as_ref().expect("batch completes").clone())
            .collect();
        match &reference {
            None => reference = Some(reports),
            Some(want) => {
                for (got, want) in reports.iter().zip(want) {
                    assert_reports_identical(got, want, &format!("serve threads={threads}"));
                    assert_eq!(got.builds_cached, want.builds_cached);
                }
            }
        }
    }
}

#[test]
fn behavioral_suite_is_invariant_across_threads_and_submission_orders() {
    // The stateful operators thread per-user state through user-aligned
    // packets; the guarantee extends to them unchanged: the whole
    // behavioral suite served concurrently is bit-identical at any thread
    // count AND in any submission order — interleaving, admission and the
    // user-aligned packet split never leak into a report.
    use hape::core::serve::SessionServer;
    use hape::tpch::events::{behavioral_queries, generate_events};
    let mut session = Session::new(Server::paper_testbed());
    session.register(generate_events(2_000, 7172));
    let queries = behavioral_queries();
    let placements = [Placement::CpuOnly, Placement::Hybrid, Placement::Auto];
    let mut reference: Option<Vec<QueryReport>> = None;
    for threads in THREADS {
        for reverse in [false, true] {
            let mut server = SessionServer::new(session.clone());
            let mut order: Vec<(usize, Placement)> = Vec::new();
            for (i, _) in queries.iter().enumerate() {
                for placement in placements {
                    order.push((i, placement));
                }
            }
            if reverse {
                order.reverse();
            }
            let mut handles: Vec<(usize, Placement, _)> = Vec::new();
            for &(i, placement) in &order {
                let cfg = ExecConfig::new(placement).with_threads(threads);
                handles.push((i, placement, server.submit_with(&queries[i], &cfg)));
            }
            let batch = server.run_all();
            // Reports keyed back to (query, placement) so both submission
            // orders compare the same matrix slot.
            let mut reports: Vec<((usize, u8), QueryReport)> = handles
                .iter()
                .map(|&(i, placement, h)| {
                    let key =
                        (i, placements.iter().position(|&p| p == placement).unwrap() as u8);
                    (key, batch.report(h).as_ref().expect("behavioral serve").clone())
                })
                .collect();
            reports.sort_by_key(|(key, _)| *key);
            let reports: Vec<QueryReport> = reports.into_iter().map(|(_, r)| r).collect();
            match &reference {
                None => reference = Some(reports),
                Some(want) => {
                    for (got, want) in reports.iter().zip(want) {
                        let ctx = format!("behavioral threads={threads} reverse={reverse}");
                        assert_reports_identical(got, want, &ctx);
                    }
                }
            }
        }
    }
}

#[test]
fn tracing_is_a_pure_observer_at_any_thread_count() {
    // The tracing plane must never perturb execution: with a recorder
    // attached, result rows and simulated makespans stay bit-identical to
    // the untraced reference run at every thread count — while the trace
    // itself actually captured the run.
    use hape::core::trace::{SpanKind, TraceRecorder};
    let session = tpch_session();
    let queries: Vec<Query> = vec![q1_query(), q5_query(JoinAlgo::Partitioned), q6_query()];
    let placements = [Placement::CpuOnly, Placement::Hybrid, Placement::Auto];
    for query in &queries {
        for placement in placements {
            let untraced = session
                .execute_with(query, &ExecConfig::new(placement).with_threads(1))
                .expect("reference run completes");
            for threads in THREADS {
                let recorder = TraceRecorder::new();
                let cfg = ExecConfig::new(placement)
                    .with_threads(threads)
                    .with_trace(recorder.clone());
                let traced = session.execute_with(query, &cfg).expect("traced run completes");
                let ctx = format!("{}/{placement:?} traced threads={threads}", query.name);
                assert_reports_identical(&traced, &untraced, &ctx);
                let trace = recorder.snapshot();
                assert!(
                    trace.spans.iter().any(|s| s.kind == SpanKind::Query),
                    "{ctx}: no query span"
                );
                assert!(
                    trace.spans.iter().any(|s| s.kind == SpanKind::Packet),
                    "{ctx}: no packet spans"
                );
                assert!(!trace.counters.is_empty(), "{ctx}: no counters");
            }
        }
    }
}

#[test]
fn tiny_packet_stress_hammers_the_pool_deterministically() {
    // 2^17 rows at 64 rows/packet = 2048 stream packets (plus the build's
    // auto-sized ones) per run — thousands of scatter jobs and fold
    // batches racing through the pool, same answer every time.
    let mut session = Session::new(Server::paper_testbed());
    session.register_as("fact", gen_key_fk_table(1 << 17, 1 << 17, 91));
    session.register_as("dim", gen_key_fk_table(1 << 12, 1 << 12, 92));
    let q = session
        .query("stress")
        .from_table("fact")
        .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
        .agg(vec![(AggFunc::Count, col("k")), (AggFunc::Sum, col("v"))]);
    let mut reference: Option<QueryReport> = None;
    for threads in [1, 2, 8, 32] {
        let mut cfg = ExecConfig::new(Placement::Hybrid).with_threads(threads);
        cfg.packet_rows = Some(64);
        let rep = session.execute_with(&q, &cfg).unwrap();
        assert_eq!(rep.rows[0].1[0], (1 << 12) as f64, "every dim key matches once");
        assert!(rep.packets_cpu + rep.packets_gpu >= 2048, "tiny packets routed");
        match &reference {
            None => reference = Some(rep),
            Some(want) => {
                assert_eq!(rep.rows, want.rows, "threads={threads}");
                assert_eq!(rep.time, want.time, "threads={threads}");
                assert_eq!(rep.packets_cpu, want.packets_cpu, "threads={threads}");
                assert_eq!(rep.packets_gpu, want.packets_gpu, "threads={threads}");
            }
        }
    }
}

#[test]
fn fault_injection_is_thread_count_invariant() {
    // The fault plane fires off control-plane coordinates (stage barriers,
    // committed-GPU-packet ordinals, sim time) that the router assigns
    // sequentially, so an injected fault — and the whole recovery path it
    // triggers (priced retries, mid-query re-placement on the survivors) —
    // must land on the same packet and produce bit-identical reports at
    // every data-plane thread count.
    use hape::core::FaultPlan;
    let mut session = Session::new(Server::paper_testbed());
    session.register_as("fact", gen_key_fk_table(1 << 16, 1 << 18, 1));
    session.register_as("dim", gen_key_fk_table(1 << 13, 1 << 13, 2));
    let q = session
        .query("faulted")
        .from_table("fact")
        .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
        .agg(vec![(AggFunc::Count, col("k")), (AggFunc::Sum, col("v"))]);
    let placements = [Placement::GpuOnly, Placement::Hybrid, Placement::Auto];
    for seed in [1u64, 7, 42] {
        for placement in placements {
            let mut reference: Option<Result<QueryReport, String>> = None;
            for threads in THREADS {
                let cfg = ExecConfig::new(placement)
                    .with_threads(threads)
                    .with_faults(FaultPlan::canonical(seed));
                let outcome = session.execute_with(&q, &cfg).map_err(|e| format!("{e}"));
                match (&reference, &outcome) {
                    (None, _) => reference = Some(outcome),
                    (Some(Ok(want)), Ok(got)) => {
                        let ctx =
                            format!("faulted seed={seed} {placement:?} threads={threads}");
                        assert_reports_identical(got, want, &ctx);
                        assert_eq!(got.retries, want.retries, "{ctx}: retries");
                        assert_eq!(got.replans, want.replans, "{ctx}: replans");
                    }
                    (Some(Err(want)), Err(got)) => {
                        assert_eq!(
                            got, want,
                            "faulted seed={seed} {placement:?}: error diverged at \
                             threads={threads}"
                        );
                    }
                    (Some(want), got) => panic!(
                        "faulted seed={seed} {placement:?}: success/failure flipped at \
                         threads={threads}: {want:?} vs {got:?}"
                    ),
                }
            }
        }
    }
}

#[test]
fn explicit_packet_rows_rides_the_config_into_the_stream_stage() {
    let mut session = Session::new(Server::paper_testbed());
    session.register_as("fact", gen_key_fk_table(1 << 16, 1 << 16, 3));
    session.register_as("dim", gen_key_fk_table(1 << 10, 1 << 10, 4));
    let q = session
        .query("sized")
        .from_table("fact")
        .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
        .agg(vec![(AggFunc::Count, col("k"))]);
    // Auto sizing clamps to >= 2K rows per packet; explicit 256-row
    // packets must multiply the routed stream-packet count accordingly.
    let auto = session.execute_with(&q, &ExecConfig::new(Placement::CpuOnly)).unwrap();
    let tiny = session
        .execute_with(&q, &ExecConfig::new(Placement::CpuOnly).with_packet_rows(256))
        .unwrap();
    assert_eq!(auto.rows, tiny.rows);
    assert!(
        tiny.packets_cpu > auto.packets_cpu,
        "explicit packet_rows must shrink packets: {} !> {}",
        tiny.packets_cpu,
        auto.packets_cpu
    );
    assert_eq!(tiny.packets_cpu, (1 << 16) / 256);
}
