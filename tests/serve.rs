//! The concurrent serving layer: determinism under interleaving, GPU
//! admission control, and the cross-query build-side cache.
//!
//! The guarantees under test:
//!
//! 1. **Concurrency never perturbs a query.** With the build cache off,
//!    every query's report under a `SessionServer` batch — rows, simulated
//!    makespan, busy times, packet routing, h2d traffic, and even typed
//!    failures — is bit-identical to a solo `Session::execute_with` run,
//!    across the TPC-H × placement matrix, at 1 and 8 data-plane threads,
//!    in either submission order.
//! 2. **Admission bounds GPU memory.** Two broadcast-heavy queries whose
//!    combined working sets exceed the fleet's GPU capacity run back to
//!    back: the second queues (counted in `admission_wait`) instead of
//!    OOM-failing, then completes.
//! 3. **The build cache is correct.** Warm submissions skip memoised
//!    builds (and their broadcasts), reported via `builds_cached`, with
//!    row-identical results across the TPC-H × placement matrix; replacing
//!    a table via the typed `register_table` path invalidates.

use hape::core::serve::SessionServer;
use hape::core::{ExecConfig, JoinAlgo, Placement, Query, QueryReport, Session};
use hape::ops::{col, AggFunc};
use hape::sim::topology::Server;
use hape::storage::datagen::gen_key_fk_table;
use hape::tpch::queries::{q1_query, q5_query, q6_query, q9_query};

const SF: f64 = 0.01;

fn tpch_session() -> Session {
    let data = hape::tpch::generate(SF, 7170);
    let mut session = Session::new(Server::tpch_scaled(SF));
    session.register(data.lineitem.clone());
    session.register(data.orders.clone());
    session.register(data.customer.clone());
    session.register(data.supplier.clone());
    session.register(data.partsupp.clone());
    session.register(data.nation.clone());
    session.register(data.region);
    session
}

fn assert_reports_identical(got: &QueryReport, want: &QueryReport, ctx: &str) {
    assert_eq!(got.rows, want.rows, "{ctx}: rows");
    assert_eq!(got.time, want.time, "{ctx}: makespan");
    assert_eq!(got.cpu_busy, want.cpu_busy, "{ctx}: cpu busy");
    assert_eq!(got.gpu_busy, want.gpu_busy, "{ctx}: gpu busy");
    assert_eq!(got.h2d_bytes, want.h2d_bytes, "{ctx}: h2d bytes");
    assert_eq!(got.packets_cpu, want.packets_cpu, "{ctx}: cpu packets");
    assert_eq!(got.packets_gpu, want.packets_gpu, "{ctx}: gpu packets");
}

#[test]
fn concurrent_batch_is_bit_identical_to_solo_across_the_matrix() {
    let session = tpch_session();
    let queries: Vec<Query> = vec![
        q1_query(),
        q5_query(JoinAlgo::Partitioned),
        q6_query(),
        q9_query(JoinAlgo::NonPartitioned),
    ];
    let placements =
        [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid, Placement::Auto];

    // Solo baselines (errors included: Q9 GpuOnly OOMs at this scale).
    let mut solo: Vec<(String, ExecConfig, Result<QueryReport, String>)> = Vec::new();
    for query in &queries {
        for placement in placements {
            let cfg = ExecConfig::new(placement);
            let report = session.execute_with(query, &cfg).map_err(|e| format!("{e}"));
            solo.push((query.name.clone(), cfg, report));
        }
    }

    for threads in [1usize, 8] {
        for reverse in [false, true] {
            // All 16 query × placement combinations in ONE batch over the
            // shared fleet, cache off so even makespans must match solo.
            let mut server = SessionServer::new(session.clone()).with_build_cache(false);
            let mut order: Vec<usize> = (0..solo.len()).collect();
            if reverse {
                order.reverse();
            }
            let mut handles = Vec::new();
            for &i in &order {
                let (_, cfg, _) = &solo[i];
                let cfg = cfg.clone().with_threads(threads);
                handles.push((i, server.submit_with(&queries[i / placements.len()], &cfg)));
            }
            let batch = server.run_all();
            assert_eq!(batch.outcomes.len(), solo.len());
            for (i, handle) in handles {
                let (name, cfg, want) = &solo[i];
                let ctx =
                    format!("{name}/{:?} threads={threads} reverse={reverse}", cfg.placement);
                let got = batch.report(handle).as_ref().map_err(|e| format!("{e}"));
                match (want, got) {
                    (Ok(w), Ok(g)) => assert_reports_identical(g, w, &ctx),
                    (Err(w), Err(g)) => assert_eq!(&g, w, "{ctx}: error diverged"),
                    (w, g) => panic!("{ctx}: success/failure flipped: {w:?} vs {g:?}"),
                }
            }
        }
    }
}

#[test]
fn admission_queues_second_gpu_heavy_query_instead_of_oom() {
    // GPU memory scaled to 512 KiB: each dim's broadcast working set
    // (~480 KiB with working space) fits alone, but two do not.
    let mut session = Session::new(Server::paper_testbed_gpu_mem_scaled(1.0 / 16384.0));
    session.register_as("fact_a", gen_key_fk_table(1 << 16, 1 << 16, 11));
    session.register_as("fact_b", gen_key_fk_table(1 << 16, 1 << 16, 12));
    session.register_as("dim_a", gen_key_fk_table(1 << 14, 1 << 14, 13));
    session.register_as("dim_b", gen_key_fk_table(1 << 14, 1 << 14, 14));
    let q = |fact: &str, dim: &str| {
        Query::new(format!("{fact}_x_{dim}"))
            .from_table(fact)
            .join(Query::scan(dim), "k", "k", JoinAlgo::NonPartitioned)
            .agg(vec![(AggFunc::Count, col("k"))])
    };
    let qa = q("fact_a", "dim_a");
    let qb = q("fact_b", "dim_b");
    let cfg = ExecConfig::new(Placement::GpuOnly);

    // Each runs solo on the scaled-down fleet.
    assert!(session.execute_with(&qa, &cfg).is_ok());
    assert!(session.execute_with(&qb, &cfg).is_ok());

    let mut server = SessionServer::new(session);
    let budget = server.gpu_budget().expect("fleet has GPUs");
    let ha = server.submit_with(&qa, &cfg);
    let hb = server.submit_with(&qb, &cfg);
    let batch = server.run_all();

    let oa = batch.outcome(ha);
    let ob = batch.outcome(hb);
    // Combined footprints genuinely exceed the budget...
    assert!(oa.gpu_reserved > 0 && ob.gpu_reserved > 0);
    assert!(oa.gpu_reserved <= budget && ob.gpu_reserved <= budget);
    assert!(oa.gpu_reserved + ob.gpu_reserved > budget, "test must oversubscribe the GPU");
    // ...so the second queued (instead of OOMing or thrashing) and then
    // completed with correct rows.
    assert_eq!(oa.admission_wait, 0, "head of line admitted immediately");
    assert!(ob.admission_wait > 0, "second query must wait for the GPU budget");
    assert!(batch.total_admission_waits() > 0);
    let ra = oa.report.as_ref().expect("first completes");
    let rb = ob.report.as_ref().expect("queued query completes after the first frees the GPU");
    assert_eq!(ra.rows[0].1[0], (1 << 14) as f64);
    assert_eq!(rb.rows[0].1[0], (1 << 14) as f64);
}

#[test]
fn oversized_query_is_admitted_solo_and_fails_like_solo_execution() {
    // One query whose hash table exceeds GPU memory outright: admission
    // must not dead-queue it — it runs alone and fails with the same typed
    // error solo execution produces, without poisoning the batch.
    let mut session = Session::new(Server::paper_testbed_gpu_mem_scaled(1.0 / 65536.0));
    session.register_as("fact", gen_key_fk_table(1 << 16, 1 << 16, 21));
    session.register_as("dim", gen_key_fk_table(1 << 14, 1 << 14, 22));
    let q = Query::new("oversized")
        .from_table("fact")
        .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
        .agg(vec![(AggFunc::Count, col("k"))]);
    let small = Query::new("small").from_table("fact").agg(vec![(AggFunc::Sum, col("v"))]);
    let gpu = ExecConfig::new(Placement::GpuOnly);
    let solo_err = format!("{}", session.execute_with(&q, &gpu).unwrap_err());

    let mut server = SessionServer::new(session);
    let hq = server.submit_with(&q, &gpu);
    let hs = server.submit_with(&small, &gpu);
    let batch = server.run_all();
    let got = batch.report(hq).as_ref().map_err(|e| format!("{e}")).unwrap_err();
    assert_eq!(got, solo_err, "failure isolated and identical to solo");
    assert!(batch.report(hs).is_ok(), "other queries in the batch are unaffected");
}

#[test]
fn build_cache_hits_skip_build_and_broadcast_and_invalidates_on_replace() {
    let mut session = Session::new(Server::paper_testbed());
    session.register_as("fact", gen_key_fk_table(1 << 16, 1 << 16, 31));
    session.register_as("dim", gen_key_fk_table(1 << 12, 1 << 12, 32));
    let q = Query::new("repeat")
        .from_table("fact")
        .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
        .agg(vec![(AggFunc::Count, col("k"))]);
    let cfg = ExecConfig::new(Placement::Hybrid);

    let mut server = SessionServer::new(session);
    let cold = server.submit_with(&q, &cfg);
    let warm = server.submit_with(&q, &cfg);
    let batch = server.run_all();
    let cold = batch.report(cold).as_ref().unwrap();
    let warm = batch.report(warm).as_ref().unwrap();

    assert_eq!(cold.builds_cached, 0);
    assert_eq!(warm.builds_cached, 1, "second submission served from the cache");
    assert_eq!(warm.rows, cold.rows, "cached build must not change results");
    assert!(warm.time < cold.time, "skipping the build must shorten the makespan");
    assert!(
        warm.h2d_bytes < cold.h2d_bytes,
        "device-resident hit must also skip the broadcast: {} !< {}",
        warm.h2d_bytes,
        cold.h2d_bytes
    );
    assert_eq!(server.cache_stats().hits, 1);
    assert_eq!(server.cache_stats().misses, 1);
    assert_eq!(server.cached_builds(), 1);

    // Replacing the dimension table through the typed path bumps the
    // catalog version; the next submission must rebuild from the new
    // contents, counting an invalidation — never serving stale rows.
    let reg = server.register_table("dim", gen_key_fk_table(1 << 11, 1 << 11, 33));
    assert!(reg.replaced());
    let fresh = server.submit_with(&q, &cfg);
    let batch = server.run_all();
    let fresh = batch.report(fresh).as_ref().unwrap();
    assert_eq!(fresh.builds_cached, 0, "stale entry must not serve");
    assert_eq!(fresh.rows[0].1[0], (1 << 11) as f64, "results reflect the new table");
    assert_eq!(server.cache_stats().invalidations, 1);
}

#[test]
fn device_failure_downgrades_broadcast_cache_entries_to_host_resident() {
    // A broadcast-resident cache entry is only valid for the fleet it was
    // broadcast to. Entries are keyed by the health epoch at insert time;
    // losing a GPU bumps the epoch, so the next hit must downgrade to a
    // host-resident serve (re-broadcasting to the current fleet) instead
    // of trusting a device copy that may live on the dead card.
    let mut session = Session::new(Server::paper_testbed());
    session.register_as("fact", gen_key_fk_table(1 << 16, 1 << 16, 41));
    session.register_as("dim", gen_key_fk_table(1 << 12, 1 << 12, 42));
    let q = Query::new("epoch")
        .from_table("fact")
        .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
        .agg(vec![(AggFunc::Count, col("k"))]);
    let cfg = ExecConfig::new(Placement::Hybrid);

    let mut server = SessionServer::new(session);
    let cold = server.submit_with(&q, &cfg);
    let warm = server.submit_with(&q, &cfg);
    let batch = server.run_all();
    let cold = batch.report(cold).as_ref().unwrap().clone();
    let warm = batch.report(warm).as_ref().unwrap().clone();
    assert_eq!(warm.builds_cached, 1);
    assert!(warm.h2d_bytes < cold.h2d_bytes, "broadcast hit skips the h2d copy");

    // A device dies between batches: the epoch moves, the entry stays.
    assert!(server.health().fail(1), "fresh failure bumps the epoch");
    let stale = server.submit_with(&q, &cfg);
    let batch = server.run_all();
    let stale = batch.report(stale).as_ref().unwrap().clone();
    assert_eq!(stale.builds_cached, 1, "the built table itself is still valid");
    assert_eq!(stale.rows, warm.rows, "downgraded hit serves identical rows");
    assert!(
        stale.h2d_bytes > warm.h2d_bytes,
        "downgraded hit must re-broadcast to the surviving fleet: {} !> {}",
        stale.h2d_bytes,
        warm.h2d_bytes
    );
    assert_eq!(server.cache_stats().invalidations, 1, "downgrade is counted");

    // The downgrade is sticky: the entry was re-keyed to the current
    // epoch, so a further hit at the same epoch serves host-resident
    // without counting another invalidation.
    let again = server.submit_with(&q, &cfg);
    let batch = server.run_all();
    let again = batch.report(again).as_ref().unwrap().clone();
    assert_eq!(again.builds_cached, 1);
    assert_eq!(again.rows, warm.rows);
    assert_eq!(server.cache_stats().invalidations, 1, "no double-count");
}

#[test]
fn cached_builds_are_row_identical_across_the_tpch_matrix() {
    // Property: for every join query × placement, a warm (cache-hit)
    // submission returns exactly the rows of a cold one — and of solo
    // execution — while genuinely skipping build stages.
    let session = tpch_session();
    let queries = [
        q5_query(JoinAlgo::NonPartitioned),
        q5_query(JoinAlgo::Partitioned),
        q9_query(JoinAlgo::NonPartitioned),
    ];
    let mut hits = 0usize;
    for query in &queries {
        for placement in [Placement::CpuOnly, Placement::Hybrid, Placement::Auto] {
            let cfg = ExecConfig::new(placement);
            let solo = session.execute_with(query, &cfg).map_err(|e| format!("{e}"));
            let mut server = SessionServer::new(session.clone());
            let cold = server.submit_with(query, &cfg);
            let warm = server.submit_with(query, &cfg);
            let batch = server.run_all();
            let ctx = format!("{}/{placement:?}", query.name);
            let cold = batch.report(cold).as_ref().map_err(|e| format!("{e}"));
            let warm = batch.report(warm).as_ref().map_err(|e| format!("{e}"));
            match solo {
                Ok(ref solo) => {
                    let cold = cold.unwrap_or_else(|e| panic!("{ctx}: cold failed: {e}"));
                    let warm = warm.unwrap_or_else(|e| panic!("{ctx}: warm failed: {e}"));
                    assert_eq!(cold.rows, solo.rows, "{ctx}: cold vs solo");
                    assert_eq!(warm.rows, solo.rows, "{ctx}: warm vs solo");
                    assert_eq!(cold.builds_cached, 0, "{ctx}");
                    assert!(warm.builds_cached > 0, "{ctx}: warm run must hit the cache");
                    assert!(
                        warm.time <= cold.time,
                        "{ctx}: cache can only shorten the makespan"
                    );
                    hits += 1;
                }
                Err(want) => {
                    // A combo that OOMs solo (Q9's big hash table under
                    // Hybrid) must fail identically cold and warm — the
                    // cache never converts a failure.
                    assert_eq!(cold.unwrap_err(), want, "{ctx}: cold error");
                    assert_eq!(warm.unwrap_err(), want, "{ctx}: warm error");
                }
            }
        }
    }
    assert!(hits >= 6, "matrix must exercise warm cache hits, got {hits}");
}

#[test]
fn bounded_build_cache_evicts_lru_first_and_never_serves_stale() {
    // Three distinct build sides through a 2-entry cache. The bound must
    // evict least-recently-used first — recency meaning hits as well as
    // inserts — and an evicted entry must silently rebuild with correct
    // rows, never serve stale state or fail.
    let mut session = Session::new(Server::paper_testbed());
    session.register_as("fact", gen_key_fk_table(1 << 14, 1 << 14, 51));
    session.register_as("dim_a", gen_key_fk_table(1 << 10, 1 << 10, 52));
    session.register_as("dim_b", gen_key_fk_table(1 << 10, 1 << 10, 53));
    session.register_as("dim_c", gen_key_fk_table(1 << 10, 1 << 10, 54));
    let q = |dim: &str| {
        Query::new(format!("fact_x_{dim}"))
            .from_table("fact")
            .join(Query::scan(dim), "k", "k", JoinAlgo::NonPartitioned)
            .agg(vec![(AggFunc::Count, col("k"))])
    };
    let (qa, qb, qc) = (q("dim_a"), q("dim_b"), q("dim_c"));
    let cfg = ExecConfig::new(Placement::CpuOnly);
    let solo_a = session.execute_with(&qa, &cfg).unwrap().rows;

    let mut server = SessionServer::new(session).with_build_cache_capacity(2);

    // Batch 1 builds a, b, c in order: inserting c overflows the bound
    // and evicts a — the oldest entry.
    server.submit_with(&qa, &cfg);
    server.submit_with(&qb, &cfg);
    server.submit_with(&qc, &cfg);
    let batch = server.run_all();
    assert_eq!(batch.builds_evicted, 1, "third insert must evict exactly one entry");
    assert_eq!(server.cached_builds(), 2, "cache stays at capacity");

    // Batch 2: b (still cached) hits, bumping its recency past c's; a
    // (evicted) misses and rebuilds with correct rows — its re-insert then
    // evicts c, not the freshly-touched b.
    let hb = server.submit_with(&qb, &cfg);
    let ha = server.submit_with(&qa, &cfg);
    let batch = server.run_all();
    assert_eq!(batch.report(hb).as_ref().unwrap().builds_cached, 1, "b survived batch 1");
    let ra = batch.report(ha).as_ref().unwrap();
    assert_eq!(ra.builds_cached, 0, "evicted entry must rebuild, not serve");
    assert_eq!(ra.rows, solo_a, "rebuilt rows identical to solo execution");
    assert_eq!(batch.builds_evicted, 1);

    // Batch 3 confirms the LRU order of batch 2: b (hit-protected) is
    // still resident although it was inserted before c; c was evicted.
    let hb = server.submit_with(&qb, &cfg);
    let hc = server.submit_with(&qc, &cfg);
    let batch = server.run_all();
    assert_eq!(batch.report(hb).as_ref().unwrap().builds_cached, 1, "hits protect recency");
    assert_eq!(batch.report(hc).as_ref().unwrap().builds_cached, 0, "c was the LRU victim");
    assert_eq!(server.cache_stats().evictions, 3);
}

#[test]
fn submit_reports_preparation_errors_per_query_without_aborting_the_batch() {
    let mut session = Session::new(Server::paper_testbed());
    session.register_as("fact", gen_key_fk_table(1 << 14, 1 << 14, 41));
    let good = Query::new("good").from_table("fact").agg(vec![(AggFunc::Count, col("k"))]);
    let bad =
        Query::new("bad").from_table("missing_table").agg(vec![(AggFunc::Count, col("k"))]);
    let mut server = SessionServer::new(session);
    let hb = server.submit(&bad);
    let hg = server.submit(&good);
    assert_eq!(server.pending(), 2);
    let batch = server.run_all();
    assert!(batch.report(hb).is_err(), "lowering failure surfaces on the handle");
    let rep = batch.report(hg).as_ref().unwrap();
    assert_eq!(rep.rows[0].1[0], (1 << 14) as f64);
    assert_eq!(batch.outcome(hb).query, "bad");
    assert_eq!(batch.outcome(hg).query, "good");
    assert_eq!(server.pending(), 0);
}
