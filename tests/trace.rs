//! The tracing + metrics plane, observed from outside the engine: span
//! nesting, counter/report agreement, the pinned Chrome-JSON schema and
//! the deterministic profile table for a fixed Q5 run, and the serving
//! layer's trace events.
//!
//! Everything asserted on the simulated side must be bit-identical across
//! runs and thread counts — the profile golden test runs the same query
//! at threads 1 and 8 and compares the rendered tables byte for byte.

use hape::core::serve::SessionServer;
use hape::core::trace::{SpanKind, Trace, TraceRecorder};
use hape::core::{ExecConfig, JoinAlgo, Placement, Session};
use hape::sim::topology::Server;
use hape::tpch::queries::q5_query;

const SF: f64 = 0.01;

fn tpch_session() -> Session {
    let data = hape::tpch::generate(SF, 7170);
    let mut session = Session::new(Server::tpch_scaled(SF));
    session.register(data.lineitem.clone());
    session.register(data.orders.clone());
    session.register(data.customer.clone());
    session.register(data.supplier.clone());
    session.register(data.partsupp.clone());
    session.register(data.nation.clone());
    session.register(data.region);
    session
}

/// One traced Q5 run under the optimizer at the given thread count.
fn traced_q5(threads: usize) -> (Trace, hape::core::QueryReport) {
    let session = tpch_session();
    let recorder = TraceRecorder::new();
    let cfg =
        ExecConfig::new(Placement::Auto).with_threads(threads).with_trace(recorder.clone());
    let report = session
        .execute_with(&q5_query(JoinAlgo::Partitioned), &cfg)
        .expect("Q5 Auto completes");
    (recorder.snapshot(), report)
}

#[test]
fn spans_nest_packet_within_stage_within_query() {
    let (trace, _) = traced_q5(1);
    let query_span =
        trace.spans.iter().find(|s| s.kind == SpanKind::Query).expect("query span recorded");
    assert_eq!(query_span.name, "Q5");
    let stages: Vec<_> = trace.spans.iter().filter(|s| s.kind == SpanKind::Stage).collect();
    assert!(!stages.is_empty(), "stage spans recorded");
    for stage in &stages {
        assert!(
            query_span.sim_contains(stage),
            "stage {:?} escapes the query's sim interval",
            stage.name
        );
        // Every stage of an Auto plan carries the optimizer's estimate —
        // the predicted side of the predicted-vs-observed record.
        assert!(stage.estimate.is_some(), "stage {:?} lost its estimate", stage.name);
    }
    for packet in trace.spans.iter().filter(|s| s.kind == SpanKind::Packet) {
        let stage = stages
            .iter()
            .find(|s| s.stage == packet.stage)
            .unwrap_or_else(|| panic!("packet {:?} has no stage span", packet.name));
        assert!(
            stage.sim_contains(packet),
            "packet {:?} escapes stage {:?}",
            packet.name,
            stage.name
        );
        assert!(packet.lane.is_some(), "packet {:?} lost its worker lane", packet.name);
    }
}

#[test]
fn counters_agree_with_the_query_report() {
    let (trace, report) = traced_q5(2);
    let counter = |name: &str| trace.counters.get(name).copied().unwrap_or(0);
    // Per-class, per-worker and per-span packet accounting all agree.
    let class_total = counter("packets.class.cpu") + counter("packets.class.gpu");
    let per_worker: u64 = trace
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("packets.worker."))
        .map(|(_, v)| v)
        .sum();
    let packet_spans = trace.spans.iter().filter(|s| s.kind == SpanKind::Packet).count() as u64;
    assert_eq!(class_total, packet_spans, "one packet span per routed packet");
    assert_eq!(per_worker, class_total, "per-worker counters decompose the class totals");
    // The report counts stream/co-process packets only; build stages route
    // packets through the same loop, so the trace's total dominates it.
    assert!(
        class_total >= (report.packets_cpu + report.packets_gpu) as u64,
        "trace saw {class_total} packets, report {}+{}",
        report.packets_cpu,
        report.packets_gpu
    );
    // The probe saw rows; the h2d counters saw the broadcast traffic.
    assert!(counter("rows.probe.in") > 0, "probe row counters recorded");
    assert_eq!(
        counter("h2d.broadcast_bytes") + counter("h2d.packet_bytes"),
        report.h2d_bytes,
        "h2d byte counters must decompose the report's h2d total"
    );
}

#[test]
fn chrome_json_schema_is_pinned_for_a_fixed_q5_run() {
    let (trace, _) = traced_q5(1);
    let json = trace.to_chrome_json();
    // The envelope: one JSON array, one event object per line.
    assert!(json.starts_with("[\n") && json.trim_end().ends_with(']'));
    // Both clock lanes are named via process-metadata events.
    assert!(
        json.contains(r#""pid":1,"tid":0,"name":"process_name","args":{"name":"sim-time"}"#)
    );
    assert!(
        json.contains(r#""pid":2,"tid":0,"name":"process_name","args":{"name":"wall-time"}"#)
    );
    // Worker lanes appear as named threads.
    assert!(json.contains(r#""name":"thread_name","args":{"name":"cpu0.0"}"#));
    // Spans export as complete events on both lanes, counters as one
    // counter event; no other phase kinds exist in the schema.
    let phase_counts = |ph: &str| json.matches(&format!(r#""ph":"{ph}""#)).count();
    assert_eq!(phase_counts("X"), 2 * trace.spans.len(), "two X events per span");
    assert_eq!(phase_counts("C"), 1, "one counter event");
    assert_eq!(
        phase_counts("X") + phase_counts("C") + phase_counts("M"),
        json.matches(r#""ph":""#).count(),
        "only X, C and M events in the export"
    );
    // Every event carries a non-empty name.
    assert_eq!(json.matches(r#""name":"""#).count(), 0, "no empty event names");
    // The query/stage/packet layers are all present.
    for name in [r#""name":"Q5""#, r#""name":"stream Q5.lineitem""#, r#""name":"packet 0""#] {
        assert!(json.contains(name), "missing span name {name}");
    }
    // Stage events carry the estimate decomposition next to observed rows.
    assert!(json.contains(r#""est_ms":"#) && json.contains(r#""rows_out":"#));
}

#[test]
fn profile_table_is_deterministic_and_pinned_for_q5() {
    let (trace_a, _) = traced_q5(1);
    let (trace_b, _) = traced_q5(8);
    let profile = trace_a.render_profile();
    // The profile derives only from simulated state and counters: the
    // rendered table is byte-identical across runs and thread counts.
    assert_eq!(profile, trace_b.render_profile(), "profile must not depend on threads");
    // Pinned structure: the header row and Q5's fixed stage names.
    assert!(profile.starts_with("== profile: predicted vs observed per stage (sim time) ==\n"));
    assert!(profile.contains("est/act") && profile.contains("rows_out"));
    for stage in [
        "build Q5.region",
        "build Q5.nation",
        "build Q5.customer",
        "build Q5.orders",
        "build Q5.supplier",
        "stream Q5.lineitem",
    ] {
        assert!(profile.contains(stage), "missing stage row {stage:?}\n{profile}");
    }
    assert!(profile.contains("-- queries --") && profile.contains("-- counters --"));
    // Session::profile renders the same table shape end to end.
    let via_session =
        tpch_session().profile(&q5_query(JoinAlgo::Partitioned)).expect("profile runs");
    assert!(via_session.contains("stream Q5.lineitem"));
    assert!(via_session.contains("est/act"));
}

#[test]
fn serving_layer_records_admission_and_cache_events() {
    let session = tpch_session();
    let recorder = TraceRecorder::new();
    let mut server = SessionServer::new(session).with_trace(recorder.clone());
    let q5 = q5_query(JoinAlgo::Partitioned);
    let a = server.submit_with(&q5, &ExecConfig::new(Placement::Auto));
    let b = server.submit_with(&q5, &ExecConfig::new(Placement::Auto));
    let batch = server.run_all();
    assert!(batch.report(a).is_ok() && batch.report(b).is_ok());

    let trace = recorder.snapshot();
    let count = |kind: SpanKind| trace.spans.iter().filter(|s| s.kind == kind).count();
    assert_eq!(count(SpanKind::Admission), 2, "one admission span per query");
    assert_eq!(count(SpanKind::Query), 2, "one query span per served query");
    // The repeat hit the cross-query cache: lookup events and the served
    // build both left their marks.
    assert!(count(SpanKind::Cache) >= 2, "cache lookups and served builds recorded");
    assert!(trace.counters.get("cache.hits").copied().unwrap_or(0) >= 1);
    assert!(trace.counters.get("cache.misses").copied().unwrap_or(0) >= 1);
    assert_eq!(trace.counters.get("admission.grants").copied(), Some(2));

    // The batch's metrics snapshot and Display summary agree with it.
    assert_eq!(batch.metrics.queries, 2);
    assert_eq!(batch.metrics.failures, 0);
    assert_eq!(batch.metrics.builds_cached, batch.total_builds_cached());
    assert!(batch.metrics.builds_cached >= 1, "repeat served from cache");
    let text = batch.to_string();
    assert!(text.starts_with("served 2 queries"), "{text}");
    assert_eq!(text.matches("Q5").count(), 2, "one line per query:\n{text}");
    assert!(text.contains("ok"), "{text}");
}
