//! Chaos suite: the fault-injection plane and degradation-aware recovery.
//!
//! The invariant under test: **faults may change how long a query takes,
//! never what it returns.** For every (query × placement × fault plan)
//! cell, the degraded execution either returns rows *bit-identical* to
//! the fault-free run, or fails with the *identical* typed error the
//! fault-free run produces (placements that are invalid regardless of
//! faults stay invalid in the same way). The inputs are exact-integer
//! tables, so "bit-identical" is meaningful even though re-placement and
//! priced retries legitimately re-route packets.
//!
//! Alongside the matrix, targeted scenarios pin each recovery layer:
//! priced transfer retries, permanent-loss re-placement (down to a full
//! GPU-fleet loss degrading GpuOnly onto the surviving CPUs), broadcast
//! OOM quarantine, the bounded replan budget's typed exhaustion error,
//! and the serving layer's `Outcome::Degraded` reporting.

use hape::core::fault::{FaultKind, FaultPlan, FaultSpec, RetryPolicy, Trigger};
use hape::core::serve::{Outcome, SessionServer};
use hape::core::{
    Catalog, Engine, EngineError, ExecConfig, JoinAlgo, Placement, Query, QueryPlan,
    QueryReport, Session,
};
use hape::ops::{col, AggFunc, AggSpec, Expr};
use hape::sim::topology::Server;
use hape::sim::SimTime;
use hape::storage::datagen::gen_key_fk_table;

/// Exact-integer join + aggregation inputs: every aggregated value is an
/// integer-valued f64, so sums are exact under any packet routing and
/// bit-identity across degraded re-executions is well-defined.
fn setup() -> (Catalog, Vec<QueryPlan>) {
    let mut catalog = Catalog::new();
    catalog.register_as("fact", gen_key_fk_table(1 << 16, 1 << 18, 1));
    catalog.register_as("dim", gen_key_fk_table(1 << 13, 1 << 13, 2));
    let join_agg = QueryPlan::try_new(
        "join_agg",
        vec![
            hape::core::Stage::Build {
                name: "dim_ht".into(),
                key_col: 0,
                pipeline: hape::core::Pipeline::scan("dim"),
            },
            hape::core::Stage::Stream {
                pipeline: hape::core::Pipeline::scan("fact")
                    .join("dim_ht", 0, vec![1], JoinAlgo::NonPartitioned)
                    .aggregate(AggSpec::ungrouped(vec![
                        (AggFunc::Count, Expr::col(0)),
                        (AggFunc::Sum, Expr::col(2)),
                    ])),
            },
        ],
    )
    .expect("join_agg plan is valid");
    let scan_agg = QueryPlan::try_new(
        "scan_agg",
        vec![hape::core::Stage::Stream {
            pipeline: hape::core::Pipeline::scan("fact").aggregate(AggSpec::ungrouped(vec![
                (AggFunc::Count, Expr::col(0)),
                (AggFunc::Sum, Expr::col(1)),
                (AggFunc::Min, Expr::col(1)),
                (AggFunc::Max, Expr::col(1)),
            ])),
        }],
    )
    .expect("scan_agg plan is valid");
    (catalog, vec![join_agg, scan_agg])
}

const PLACEMENTS: [Placement; 4] =
    [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid, Placement::Auto];

fn run(
    engine: &Engine,
    catalog: &Catalog,
    plan: &QueryPlan,
    placement: Placement,
    faults: FaultPlan,
) -> Result<QueryReport, String> {
    let cfg = ExecConfig::new(placement).with_faults(faults);
    engine.run(catalog, plan, &cfg).map_err(|e| e.to_string())
}

#[test]
fn canonical_fault_plans_preserve_results_across_the_matrix() {
    let (catalog, plans) = setup();
    let engine = Engine::new(Server::paper_testbed());
    for plan in &plans {
        for placement in PLACEMENTS {
            let clean = run(&engine, &catalog, plan, placement, FaultPlan::off());
            for seed in [1u64, 7, 42] {
                let faulted =
                    run(&engine, &catalog, plan, placement, FaultPlan::canonical(seed));
                let ctx = format!("{}/{placement:?}/seed={seed}", plan.name);
                match (&clean, &faulted) {
                    (Ok(c), Ok(f)) => {
                        assert_eq!(c.rows, f.rows, "{ctx}: degraded rows diverged");
                    }
                    (Err(c), Err(f)) => {
                        assert_eq!(c, f, "{ctx}: error diverged under faults");
                    }
                    (c, f) => panic!("{ctx}: success/failure flipped: {c:?} vs {f:?}"),
                }
            }
        }
    }
}

#[test]
fn faulted_runs_are_deterministic_across_repeats() {
    let (catalog, plans) = setup();
    let engine = Engine::new(Server::paper_testbed());
    let faults = FaultPlan::canonical(7);
    for placement in [Placement::GpuOnly, Placement::Hybrid, Placement::Auto] {
        let a = run(&engine, &catalog, &plans[0], placement, faults.clone())
            .expect("canonical plan recovers");
        let b = run(&engine, &catalog, &plans[0], placement, faults.clone())
            .expect("canonical plan recovers");
        assert_eq!(a.rows, b.rows, "{placement:?}: rows");
        assert_eq!(a.time, b.time, "{placement:?}: makespan");
        assert_eq!(a.retries, b.retries, "{placement:?}: retries");
        assert_eq!(a.replans, b.replans, "{placement:?}: replans");
    }
}

#[test]
fn cpu_only_runs_are_untouched_by_gpu_fault_plans() {
    let (catalog, plans) = setup();
    let engine = Engine::new(Server::paper_testbed());
    let clean = run(&engine, &catalog, &plans[0], Placement::CpuOnly, FaultPlan::off())
        .expect("clean CpuOnly run");
    let faulted =
        run(&engine, &catalog, &plans[0], Placement::CpuOnly, FaultPlan::canonical(1))
            .expect("faulted CpuOnly run");
    // No GPU workers exist, so no trigger can fire: even the makespan is
    // bit-identical, and nothing is counted as recovered.
    assert_eq!(clean.rows, faulted.rows);
    assert_eq!(clean.time, faulted.time);
    assert_eq!(faulted.retries, 0);
    assert_eq!(faulted.replans, 0);
}

#[test]
fn transfer_faults_are_priced_retries_not_result_changes() {
    let (catalog, plans) = setup();
    let engine = Engine::new(Server::paper_testbed());
    let clean = run(&engine, &catalog, &plans[0], Placement::GpuOnly, FaultPlan::off())
        .expect("clean run");
    let faults = FaultPlan::new(
        vec![FaultSpec {
            gpu: 0,
            kind: FaultKind::TransferError { failures: 2 },
            trigger: Trigger::AtGpuPacket(1),
        }],
        RetryPolicy::default(),
    );
    let faulted =
        run(&engine, &catalog, &plans[0], Placement::GpuOnly, faults).expect("retries recover");
    assert_eq!(clean.rows, faulted.rows, "rows diverged");
    assert_eq!(faulted.retries, 2, "both transfer failures priced as retries");
    assert_eq!(faulted.replans, 0);
    assert!(
        faulted.time > clean.time,
        "backoff + re-sent transfers must cost simulated time: {} vs {}",
        faulted.time,
        clean.time
    );
}

#[test]
fn permanent_gpu_loss_replans_on_the_survivors() {
    let (catalog, plans) = setup();
    let engine = Engine::new(Server::paper_testbed());
    let clean = run(&engine, &catalog, &plans[0], Placement::Hybrid, FaultPlan::off())
        .expect("clean run");
    let faults = FaultPlan::new(
        vec![FaultSpec {
            gpu: 1,
            kind: FaultKind::GpuFailed,
            trigger: Trigger::AtGpuPacket(2),
        }],
        RetryPolicy::default(),
    );
    let faulted = run(&engine, &catalog, &plans[0], Placement::Hybrid, faults)
        .expect("loss of one GPU recovers");
    assert_eq!(clean.rows, faulted.rows, "rows diverged after re-placement");
    assert_eq!(faulted.replans, 1, "one mid-query re-placement");
}

#[test]
fn gpu_only_degrades_onto_surviving_cpus_when_the_whole_gpu_fleet_dies() {
    let (catalog, plans) = setup();
    let engine = Engine::new(Server::paper_testbed());
    let clean = run(&engine, &catalog, &plans[0], Placement::GpuOnly, FaultPlan::off())
        .expect("clean run");
    let faults = FaultPlan::new(
        vec![
            FaultSpec { gpu: 0, kind: FaultKind::GpuFailed, trigger: Trigger::AtGpuPacket(1) },
            FaultSpec { gpu: 1, kind: FaultKind::GpuFailed, trigger: Trigger::AtGpuPacket(1) },
        ],
        RetryPolicy::default(),
    );
    let faulted = run(&engine, &catalog, &plans[0], Placement::GpuOnly, faults)
        .expect("full GPU loss falls back to the surviving CPUs");
    assert_eq!(clean.rows, faulted.rows, "rows diverged after CPU fallback");
    assert!(faulted.replans >= 1 && faulted.replans <= 2, "replans: {}", faulted.replans);
}

#[test]
fn broadcast_oom_quarantines_the_device_and_replans() {
    let (catalog, plans) = setup();
    let engine = Engine::new(Server::paper_testbed());
    let clean = run(&engine, &catalog, &plans[0], Placement::GpuOnly, FaultPlan::off())
        .expect("clean run");
    let faults = FaultPlan::new(
        vec![FaultSpec { gpu: 0, kind: FaultKind::BroadcastOom, trigger: Trigger::AtStage(1) }],
        RetryPolicy::default(),
    );
    let faulted = run(&engine, &catalog, &plans[0], Placement::GpuOnly, faults)
        .expect("OOM quarantine recovers on the other GPU");
    assert_eq!(clean.rows, faulted.rows, "rows diverged after OOM recovery");
    assert_eq!(faulted.replans, 1);
}

#[test]
fn device_slow_changes_timing_but_never_rows() {
    let (catalog, plans) = setup();
    let engine = Engine::new(Server::paper_testbed());
    let clean = run(&engine, &catalog, &plans[0], Placement::GpuOnly, FaultPlan::off())
        .expect("clean run");
    let faults = FaultPlan::new(
        vec![FaultSpec {
            gpu: 0,
            kind: FaultKind::DeviceSlow { factor: 4.0 },
            trigger: Trigger::AtStage(0),
        }],
        RetryPolicy::default(),
    );
    let faulted =
        run(&engine, &catalog, &plans[0], Placement::GpuOnly, faults).expect("slow run");
    assert_eq!(clean.rows, faulted.rows, "a slow link must not change results");
    assert!(
        faulted.time >= clean.time,
        "a 4x slower PCIe link cannot make the query faster: {} vs {}",
        faulted.time,
        clean.time
    );
    assert_eq!(faulted.replans, 0, "slow-down is not a loss");
}

#[test]
fn exhausted_replan_budget_is_a_typed_recovery_failure() {
    let (catalog, plans) = setup();
    let engine = Engine::new(Server::paper_testbed());
    let faults = FaultPlan::new(
        vec![
            FaultSpec { gpu: 0, kind: FaultKind::GpuFailed, trigger: Trigger::AtGpuPacket(1) },
            FaultSpec { gpu: 1, kind: FaultKind::GpuFailed, trigger: Trigger::AtGpuPacket(1) },
        ],
        RetryPolicy { max_replans: 1, ..RetryPolicy::default() },
    );
    let cfg = ExecConfig::new(Placement::GpuOnly).with_faults(faults);
    let err = engine.run(&catalog, &plans[0], &cfg).expect_err("budget of 1 cannot absorb 2");
    assert!(
        matches!(err, EngineError::RecoveryFailed { .. }),
        "expected RecoveryFailed, got: {err}"
    );
    let msg = err.to_string();
    assert!(msg.contains("replan budget"), "{msg}");
}

/// The logical front-end face of the synthetic join + aggregation.
fn served_query(name: &str) -> Query {
    Query::new(name)
        .from_table("fact")
        .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
        .agg(vec![(AggFunc::Count, col("k")), (AggFunc::Sum, col("v"))])
}

fn served_session() -> Session {
    let mut session = Session::new(Server::paper_testbed());
    session.register_as("fact", gen_key_fk_table(1 << 16, 1 << 18, 1));
    session.register_as("dim", gen_key_fk_table(1 << 13, 1 << 13, 2));
    session
}

#[test]
fn serving_layer_reports_degraded_outcomes_with_identical_rows() {
    let session = served_session();
    let query = served_query("served");
    let cfg = ExecConfig::new(Placement::GpuOnly);
    let clean = session.execute_with(&query, &cfg).expect("clean solo run");

    let faults = FaultPlan::new(
        vec![FaultSpec {
            gpu: 1,
            kind: FaultKind::GpuFailed,
            trigger: Trigger::AtGpuPacket(2),
        }],
        RetryPolicy::default(),
    );
    let mut server = SessionServer::new(session).with_faults(faults);
    let handle = server.submit_with(&query, &cfg);
    let batch = server.run_all();
    let outcome = batch.outcome(handle);
    match outcome.outcome {
        Outcome::Degraded { replans, .. } => assert!(replans >= 1, "replans: {replans}"),
        other => panic!("expected Degraded, got {other:?}"),
    }
    let report = outcome.report.as_ref().expect("degraded query still completes");
    assert_eq!(report.rows, clean.rows, "degraded served rows diverged from clean solo");
    // The loss is fleet-wide state: gpu1 stays quarantined, so the
    // admission budget now reflects the surviving fleet only.
    assert!(server.health().is_failed(1), "gpu1 quarantined server-wide");
    assert!(server.gpu_budget().is_some(), "gpu0 survives");
}

#[test]
fn timed_out_query_finishes_with_partial_report_not_error() {
    let session = served_session();
    let query = served_query("deadlined");
    let cfg = ExecConfig::new(Placement::CpuOnly);
    let mut server = SessionServer::new(session);
    // A deadline no multi-stage query can meet: one femtosecond.
    let handle = server.submit_with_budget(&query, &cfg, SimTime::from_ns(0.000_001));
    let batch = server.run_all();
    let outcome = batch.outcome(handle);
    match outcome.outcome {
        Outcome::TimedOut { budget, elapsed } => {
            assert!(elapsed > budget, "elapsed {elapsed} must exceed budget {budget}");
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert!(outcome.report.is_ok(), "a deadline is a scheduling outcome, not an error");
}

#[test]
fn canceled_query_stops_at_the_next_stage_barrier() {
    let session = served_session();
    let query = served_query("canceled");
    let cfg = ExecConfig::new(Placement::CpuOnly);
    let mut server = SessionServer::new(session);
    let handle = server.submit_with(&query, &cfg);
    let token = server.cancel_token(handle).expect("pending submission has a token");
    assert!(!token.is_canceled());
    assert!(server.cancel(handle), "known handle cancels");
    assert!(token.is_canceled());
    let batch = server.run_all();
    let outcome = batch.outcome(handle);
    assert_eq!(outcome.outcome, Outcome::Canceled);
    assert!(outcome.report.is_ok(), "cancellation keeps the partial report");
}
