//! Cost-based auto-placement properties.
//!
//! 1. **Capacity guard** (deterministic property sweep — the Q9
//!    regression guard): across GPU memory scalings and hash-table sizes,
//!    `Placement::Auto` never selects a placement whose *estimated* GPU
//!    hash-table footprint exceeds device capacity, and the placement it
//!    does select executes to the `CpuOnly` reference rows.
//! 2. **TPC-H sweep**: `Auto` picks a valid placement for every query —
//!    row-identical to `CpuOnly`, including Q9, which completes where the
//!    manual GPU placements hit the §6.4 out-of-memory failure.
//! 3. **Makespan**: on Q1/Q5/Q6 the optimizer's simulated makespan is no
//!    worse than the best of the three manual placements.
//! 4. **Explain snapshot**: Q5 under `Auto` renders the chosen subsets
//!    with per-stage cost estimates.
//! 5. **Co-processing regression** (the tentpole): Auto plans Q9's stream
//!    as a first-class `PlacedStage::CoProcess`, beats the CPU-routed
//!    placement, and is no slower than the deleted hand-written
//!    `run_q9_hybrid` path (reconstructed here from the same public
//!    pieces it was built on).

use hape::core::engine::EngineError;
use hape::core::provider::TableStore;
use hape::core::{ExecConfig, HapeError, JoinAlgo, PlacedStage, Placement, Query, Session};
use hape::join::{coprocess_join, CoprocessConfig, JoinInput, OutputMode};
use hape::ops::{col, AggFunc};
use hape::sim::topology::Server;
use hape::sim::SimTime;
use hape::storage::datagen::gen_key_fk_table;
use hape::tpch::queries::{q1_query, q5_query, q6_query, q9_query};
use hape::tpch::reference::rows_approx_eq;

const SF: f64 = 0.01;

fn tpch_session() -> Session {
    let data = hape::tpch::generate(SF, 31337);
    let mut session = Session::new(Server::tpch_scaled(SF));
    session.register(data.lineitem.clone());
    session.register(data.orders.clone());
    session.register(data.customer.clone());
    session.register(data.supplier.clone());
    session.register(data.partsupp.clone());
    session.register(data.nation.clone());
    session.register(data.region);
    session
}

fn tpch_queries() -> Vec<Query> {
    vec![
        q1_query(),
        q5_query(JoinAlgo::NonPartitioned),
        q5_query(JoinAlgo::Partitioned),
        q6_query(),
        q9_query(JoinAlgo::NonPartitioned),
    ]
}

/// The Q9 regression guard as a property: whatever the ratio between
/// hash-table size and GPU memory, the optimizer either keeps the tables
/// off the GPUs or proves (on its own estimates) that they fit — and the
/// chosen placement always executes to the CPU reference rows.
#[test]
fn auto_never_overcommits_gpu_memory() {
    for dim_rows in [1usize << 10, 1 << 13, 1 << 16] {
        for mem_factor in [1.0, 1.0 / 256.0, 1.0 / 4096.0, 1.0 / 65536.0] {
            let mut session = Session::new(Server::paper_testbed_gpu_mem_scaled(mem_factor))
                .with_placement(Placement::Auto);
            session.register_as("fact", gen_key_fk_table(1 << 18, 1 << 18, 7));
            session.register_as("dim", gen_key_fk_table(dim_rows, dim_rows, 8));
            let q = session
                .query("guard")
                .from_table("fact")
                .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
                .agg(vec![(AggFunc::Count, col("k")), (AggFunc::Sum, col("v"))]);
            let ctx = format!("dim_rows={dim_rows} mem_factor={mem_factor}");
            let placed = session.place(&q).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let costs = placed.costs.as_ref().expect("auto plans carry cost estimates");
            for (i, cost) in costs.stages.iter().enumerate() {
                assert!(
                    cost.fits_gpu_memory(),
                    "{ctx}: stage {i} estimated footprint {} exceeds capacity {:?}",
                    cost.gpu_required,
                    cost.gpu_capacity
                );
                // The estimate is attached to the stage that actually uses
                // GPUs — broadcast segments or co-processing lanes; pure
                // CPU stages have no capacity bound.
                let uses_gpu = placed.stages[i].segments().iter().any(|s| s.target.is_gpu())
                    || matches!(&placed.stages[i], PlacedStage::CoProcess { gpus, .. } if !gpus.is_empty());
                assert_eq!(cost.gpu_capacity.is_some(), uses_gpu, "{ctx}: stage {i}");
                // A co-processing stage co-partitions on the CPUs only.
                if let PlacedStage::CoProcess { segments, .. } = &placed.stages[i] {
                    assert!(
                        segments.iter().all(|s| !s.target.is_gpu()),
                        "{ctx}: stage {i} co-partitions on GPUs"
                    );
                }
            }
            let auto = session.execute(&q).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let cpu = session
                .execute_with(&q, &ExecConfig::new(Placement::CpuOnly))
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_eq!(auto.rows, cpu.rows, "{ctx}: rows diverge from CpuOnly");
        }
    }
}

#[test]
fn auto_is_row_identical_to_cpu_reference_across_tpch() {
    let session = tpch_session();
    for query in &tpch_queries() {
        let reference =
            session.execute_with(query, &ExecConfig::new(Placement::CpuOnly)).unwrap().rows;
        let auto = session
            .execute_with(query, &ExecConfig::new(Placement::Auto))
            .unwrap_or_else(|e| panic!("{} under Auto: {e}", query.name));
        assert_eq!(auto.rows.len(), reference.len(), "{}: row count", query.name);
        for (got, want) in auto.rows.iter().zip(&reference) {
            assert_eq!(got.0, want.0, "{}: group keys", query.name);
        }
        assert!(
            rows_approx_eq(&auto.rows, &reference),
            "{}: Auto values diverge from CpuOnly",
            query.name
        );
    }
}

#[test]
fn auto_completes_q9_through_a_coprocess_stage() {
    let session = tpch_session();
    let q9 = q9_query(JoinAlgo::NonPartitioned);
    // The manual GPU placements reproduce the §6.4 failure…
    for placement in [Placement::GpuOnly, Placement::Hybrid] {
        match session.execute_with(&q9, &ExecConfig::new(placement)).unwrap_err() {
            HapeError::Engine(EngineError::GpuMemoryExceeded { required, capacity }) => {
                assert!(required > capacity, "{placement:?}");
            }
            e => panic!("{placement:?}: unexpected error {e}"),
        }
    }
    // …while the optimizer plans the §5 intra-operator co-processing
    // stage: CPU segments co-partition the stream against the oversized
    // orders table, the GPUs run single-pass joins.
    let placed = session.place_with(&q9, &ExecConfig::new(Placement::Auto)).unwrap();
    let stream = placed.stages.last().unwrap();
    let PlacedStage::CoProcess { ht, segments, gpus, .. } = stream else {
        panic!("Q9's stream must place as a co-process stage:\n{}", placed.render());
    };
    assert_eq!(ht, "Q9*.orders", "the oversized final probe is co-processed");
    assert!(segments.iter().all(|s| !s.target.is_gpu()), "co-partitioning is CPU work");
    assert_eq!(gpus.len(), 2, "both GPUs serve as single-pass join lanes");
    let cost = &placed.costs.as_ref().unwrap().stages.last().unwrap();
    let cp = cost.coprocess.as_ref().expect("co-process stages carry the §5 decomposition");
    assert_eq!(cp.ht, "Q9*.orders");
    assert!(cp.cpu_partition_seconds > 0.0 && cp.gpu_pass_seconds > 0.0);
    // Explain renders the decision and its cost decomposition.
    let text = session.explain_with(&q9, &ExecConfig::new(Placement::Auto)).unwrap();
    assert!(text.contains("stream (co-process \"Q9*.orders\")"), "{text}");
    assert!(text.contains("co-process: cpu co-partition \"Q9*.orders\""), "{text}");
    assert!(text.contains("est: co-process cpu-partition"), "{text}");
    // The co-processed run matches the CPU reference rows and beats the
    // CPU-routed stream placement the old optimizer fell back to.
    let auto = session.execute_with(&q9, &ExecConfig::new(Placement::Auto)).unwrap();
    let cpu = session.execute_with(&q9, &ExecConfig::new(Placement::CpuOnly)).unwrap();
    assert!(rows_approx_eq(&auto.rows, &cpu.rows));
    assert!(
        auto.time < cpu.time,
        "co-processing {} must beat the CPU-routed stream {}",
        auto.time,
        cpu.time
    );
    assert!(auto.packets_gpu > 0, "co-partitions must reach the GPUs");
    assert!(auto.h2d_bytes > 0, "co-partitions must cross PCIe");
}

/// The deleted `run_q9_hybrid` path, reconstructed from the same public
/// pieces it was built on (explicit CPU materialisation + direct
/// `coprocess_join`), as the makespan yardstick: the optimizer-planned
/// co-processing stage must be no slower than the hand-written escape
/// hatch it replaces.
#[test]
fn auto_q9_is_no_slower_than_the_old_hand_written_hybrid() {
    use hape::core::plan::Stage;
    use hape::sim::CpuCostModel;

    let data = hape::tpch::generate(SF, 31337);
    let catalog = hape::tpch::queries::base_catalog(&data);
    let engine = hape::core::Engine::new(Server::tpch_scaled(SF));
    let algo = JoinAlgo::NonPartitioned;

    // ---- The pre-PR hand-written hybrid, verbatim: materialise the
    // lineitem-side intermediate on the CPUs, co-process the big
    // intermediate⋈orders join, charge the final fold analytically.
    let inter_query = Query::new("Q9.intermediate")
        .from_table("lineitem")
        .join(Query::scan("partsupp"), "l_pskey", "ps_pskey", algo)
        .join(
            Query::scan("supplier").join(
                Query::scan("nation"),
                "s_nationkey",
                "n_nationkey",
                algo,
            ),
            "l_suppkey",
            "s_suppkey",
            algo,
        );
    let lowered = inter_query
        .lower_materialize(
            &catalog,
            &[
                "l_orderkey",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "ps_supplycost",
                "n_name",
            ],
        )
        .unwrap();
    let mut tables = TableStore::new();
    let mut clock = SimTime::ZERO;
    for stage in &lowered.builds {
        let Stage::Build { name, key_col, pipeline } = stage else { continue };
        let (jt, end, _) = engine
            .build_join_table(&lowered.catalog, pipeline, *key_col, &tables, clock)
            .unwrap();
        tables.insert(name.clone(), jt);
        clock = end;
    }
    let (inter, inter_end, _) =
        engine.materialize_cpu(&lowered.catalog, &lowered.pipeline, &tables, clock).unwrap();
    let inter_keys: Vec<i32> =
        inter.col(lowered.index_of("l_orderkey").unwrap()).as_i32().to_vec();
    let inter_vals: Vec<u32> = (0..inter.rows() as u32).collect();
    let order_keys: Vec<i32> = data.orders.column("o_orderkey").as_i32().to_vec();
    let order_vals: Vec<u32> = (0..order_keys.len() as u32).collect();
    let cfg = CoprocessConfig {
        n_gpus: engine.server.gpus.len(),
        cpu_workers: engine.server.total_cpu_cores(),
        mode: OutputMode::MatchIndices,
        ..Default::default()
    };
    let cop = coprocess_join(
        &engine.server,
        JoinInput::new(&order_keys, &order_vals),
        JoinInput::new(&inter_keys, &inter_vals),
        &cfg,
    )
    .unwrap();
    let model = CpuCostModel::new(engine.server.cpus[0].clone(), engine.server.cpus[0].cores);
    let agg_time = model.random_accesses(cop.outcome.stats.matches, 1 << 16)
        / (engine.server.total_cpu_cores() as f64 * 0.9);
    let old_hybrid = inter_end + cop.outcome.time + agg_time;

    // ---- The optimizer-planned co-processing stage.
    let q9 = q9_query(algo).lower(&catalog).unwrap();
    let auto = engine.run(&q9.catalog, &q9.plan, &ExecConfig::new(Placement::Auto)).unwrap();
    assert!(
        auto.time <= old_hybrid,
        "Auto Q9 {} must be no slower than the old hand-written hybrid {}",
        auto.time,
        old_hybrid
    );
}

#[test]
fn auto_makespan_is_no_worse_than_the_best_manual_placement() {
    let session = tpch_session();
    for query in [q1_query(), q5_query(JoinAlgo::Partitioned), q6_query()] {
        let auto =
            session.execute_with(&query, &ExecConfig::new(Placement::Auto)).unwrap().time;
        let mut best = None::<hape::sim::SimTime>;
        for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
            if let Ok(rep) = session.execute_with(&query, &ExecConfig::new(placement)) {
                best = Some(best.map_or(rep.time, |b: hape::sim::SimTime| b.min(rep.time)));
            }
        }
        let best = best.expect("at least one manual placement runs");
        assert!(auto <= best, "{}: Auto {auto} slower than best manual {best}", query.name);
    }
}

const Q5_AUTO_EXPLAIN: &str = "\
PlacedPlan Q5
stage 0: build Q5.region (key col 0)
  pipeline: scan(region) | filter
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  est: total 0.0000 ms = stream 0.0000 ms + broadcast 0.0000 ms + d2h 0.0000 ms
stage 1: build Q5.nation (key col 0)
  pipeline: scan(nation) | join(Q5.region)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  est: total 0.0000 ms = stream 0.0000 ms + broadcast 0.0000 ms + d2h 0.0000 ms
stage 2: build Q5.customer (key col 0)
  pipeline: scan(customer) | join(Q5.nation)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  est: total 0.0005 ms = stream 0.0005 ms + broadcast 0.0000 ms + d2h 0.0000 ms
stage 3: build Q5.orders (key col 0)
  pipeline: scan(Q5.orders) | filter | join(Q5.customer)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  est: total 0.0034 ms = stream 0.0034 ms + broadcast 0.0000 ms + d2h 0.0000 ms
stage 4: build Q5.supplier (key col 0)
  pipeline: scan(supplier) | join(Q5.nation)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  est: total 0.0000 ms = stream 0.0000 ms + broadcast 0.0000 ms + d2h 0.0000 ms
stage 5: stream
  pipeline: scan(Q5.lineitem) | join(Q5.orders) | join(Q5.supplier) | filter | agg
  Router(LoadAware, 1 -> 26)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  segment gpu0: Gpu dop=1 mem=gmem0 packing=Packets
    MemMove(dram0 -> gmem0)
    DeviceCrossing(Cpu -> Gpu)
    MemMove(dram0 -> gmem0, broadcast \"Q5.orders\")
    MemMove(dram0 -> gmem0, broadcast \"Q5.supplier\")
  segment gpu1: Gpu dop=1 mem=gmem1 packing=Packets
    MemMove(dram0 -> gmem1)
    DeviceCrossing(Cpu -> Gpu)
    MemMove(dram0 -> gmem1, broadcast \"Q5.orders\")
    MemMove(dram0 -> gmem1, broadcast \"Q5.supplier\")
  est: total 0.0522 ms = stream 0.0373 ms + broadcast 0.0149 ms + d2h 0.0000 ms
  est: gpu hash tables 179280 B (448200 B with working space) of 858993 B
est makespan: 0.0562 ms
verified: 6 stages, 0 diagnostics
";

#[test]
fn q5_auto_explain_renders_subsets_and_cost_estimates() {
    let session = tpch_session();
    let q5 = q5_query(JoinAlgo::NonPartitioned);
    let text = session.explain_with(&q5, &ExecConfig::new(Placement::Auto)).unwrap();
    assert_eq!(text, Q5_AUTO_EXPLAIN, "Auto snapshot diverged:\n{text}");
    // Manual placements render no cost lines.
    let manual = session.explain_with(&q5, &ExecConfig::new(Placement::Hybrid)).unwrap();
    assert!(!manual.contains("est:"), "{manual}");
}
