//! Cost-based auto-placement properties.
//!
//! 1. **Capacity guard** (deterministic property sweep — the Q9
//!    regression guard): across GPU memory scalings and hash-table sizes,
//!    `Placement::Auto` never selects a placement whose *estimated* GPU
//!    hash-table footprint exceeds device capacity, and the placement it
//!    does select executes to the `CpuOnly` reference rows.
//! 2. **TPC-H sweep**: `Auto` picks a valid placement for every query —
//!    row-identical to `CpuOnly`, including Q9, which completes where the
//!    manual GPU placements hit the §6.4 out-of-memory failure.
//! 3. **Makespan**: on Q1/Q5/Q6 the optimizer's simulated makespan is no
//!    worse than the best of the three manual placements.
//! 4. **Explain snapshot**: Q5 under `Auto` renders the chosen subsets
//!    with per-stage cost estimates.

use hape::core::engine::EngineError;
use hape::core::{ExecConfig, HapeError, JoinAlgo, Placement, Query, Session};
use hape::ops::{col, AggFunc};
use hape::sim::topology::Server;
use hape::storage::datagen::gen_key_fk_table;
use hape::tpch::queries::{q1_query, q5_query, q6_query, q9_query};
use hape::tpch::reference::rows_approx_eq;

const SF: f64 = 0.01;

fn tpch_session() -> Session {
    let data = hape::tpch::generate(SF, 31337);
    let mut session = Session::new(Server::tpch_scaled(SF));
    session.register(data.lineitem.clone());
    session.register(data.orders.clone());
    session.register(data.customer.clone());
    session.register(data.supplier.clone());
    session.register(data.partsupp.clone());
    session.register(data.nation.clone());
    session.register(data.region.clone());
    session
}

fn tpch_queries() -> Vec<Query> {
    vec![
        q1_query(),
        q5_query(JoinAlgo::NonPartitioned),
        q5_query(JoinAlgo::Partitioned),
        q6_query(),
        q9_query(JoinAlgo::NonPartitioned),
    ]
}

/// The Q9 regression guard as a property: whatever the ratio between
/// hash-table size and GPU memory, the optimizer either keeps the tables
/// off the GPUs or proves (on its own estimates) that they fit — and the
/// chosen placement always executes to the CPU reference rows.
#[test]
fn auto_never_overcommits_gpu_memory() {
    for dim_rows in [1usize << 10, 1 << 13, 1 << 16] {
        for mem_factor in [1.0, 1.0 / 256.0, 1.0 / 4096.0, 1.0 / 65536.0] {
            let mut session = Session::new(Server::paper_testbed_gpu_mem_scaled(mem_factor))
                .with_placement(Placement::Auto);
            session.register_as("fact", gen_key_fk_table(1 << 18, 1 << 18, 7));
            session.register_as("dim", gen_key_fk_table(dim_rows, dim_rows, 8));
            let q = session
                .query("guard")
                .from_table("fact")
                .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
                .agg(vec![(AggFunc::Count, col("k")), (AggFunc::Sum, col("v"))]);
            let ctx = format!("dim_rows={dim_rows} mem_factor={mem_factor}");
            let placed = session.place(&q).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let costs = placed.costs.as_ref().expect("auto plans carry cost estimates");
            for (i, cost) in costs.stages.iter().enumerate() {
                assert!(
                    cost.fits_gpu_memory(),
                    "{ctx}: stage {i} estimated footprint {} exceeds capacity {:?}",
                    cost.gpu_required,
                    cost.gpu_capacity
                );
                // The estimate is attached to the stage that actually
                // placed on GPUs; CPU-only stages have no capacity bound.
                let has_gpu = placed.stages[i].segments().iter().any(|s| s.target.is_gpu());
                assert_eq!(cost.gpu_capacity.is_some(), has_gpu, "{ctx}: stage {i}");
            }
            let auto = session.execute(&q).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let cpu = session
                .execute_with(&q, &ExecConfig::new(Placement::CpuOnly))
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_eq!(auto.rows, cpu.rows, "{ctx}: rows diverge from CpuOnly");
        }
    }
}

#[test]
fn auto_is_row_identical_to_cpu_reference_across_tpch() {
    let session = tpch_session();
    for query in &tpch_queries() {
        let reference =
            session.execute_with(query, &ExecConfig::new(Placement::CpuOnly)).unwrap().rows;
        let auto = session
            .execute_with(query, &ExecConfig::new(Placement::Auto))
            .unwrap_or_else(|e| panic!("{} under Auto: {e}", query.name));
        assert_eq!(auto.rows.len(), reference.len(), "{}: row count", query.name);
        for (got, want) in auto.rows.iter().zip(&reference) {
            assert_eq!(got.0, want.0, "{}: group keys", query.name);
        }
        assert!(
            rows_approx_eq(&auto.rows, &reference),
            "{}: Auto values diverge from CpuOnly",
            query.name
        );
    }
}

#[test]
fn auto_completes_q9_where_manual_gpu_placements_oom() {
    let session = tpch_session();
    let q9 = q9_query(JoinAlgo::NonPartitioned);
    // The manual GPU placements reproduce the §6.4 failure…
    for placement in [Placement::GpuOnly, Placement::Hybrid] {
        match session.execute_with(&q9, &ExecConfig::new(placement)).unwrap_err() {
            HapeError::Engine(EngineError::GpuMemoryExceeded { required, capacity }) => {
                assert!(required > capacity, "{placement:?}");
            }
            e => panic!("{placement:?}: unexpected error {e}"),
        }
    }
    // …while the optimizer routes the stream stage onto the CPUs.
    let placed = session.place_with(&q9, &ExecConfig::new(Placement::Auto)).unwrap();
    let stream = placed.stages.last().unwrap();
    assert!(
        stream.segments().iter().all(|s| !s.target.is_gpu()),
        "Q9's stream must stay off the GPUs"
    );
    let auto = session.execute_with(&q9, &ExecConfig::new(Placement::Auto)).unwrap();
    let cpu = session.execute_with(&q9, &ExecConfig::new(Placement::CpuOnly)).unwrap();
    assert!(rows_approx_eq(&auto.rows, &cpu.rows));
    assert_eq!(auto.time, cpu.time, "Q9 Auto degenerates to the CPU placement");
}

#[test]
fn auto_makespan_is_no_worse_than_the_best_manual_placement() {
    let session = tpch_session();
    for query in [q1_query(), q5_query(JoinAlgo::Partitioned), q6_query()] {
        let auto =
            session.execute_with(&query, &ExecConfig::new(Placement::Auto)).unwrap().time;
        let mut best = None::<hape::sim::SimTime>;
        for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
            if let Ok(rep) = session.execute_with(&query, &ExecConfig::new(placement)) {
                best = Some(best.map_or(rep.time, |b: hape::sim::SimTime| b.min(rep.time)));
            }
        }
        let best = best.expect("at least one manual placement runs");
        assert!(auto <= best, "{}: Auto {auto} slower than best manual {best}", query.name);
    }
}

const Q5_AUTO_EXPLAIN: &str = "\
PlacedPlan Q5
stage 0: build Q5.region (key col 0)
  pipeline: scan(region) | filter
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  est: total 0.0000 ms = stream 0.0000 ms + broadcast 0.0000 ms + d2h 0.0000 ms
stage 1: build Q5.nation (key col 0)
  pipeline: scan(nation) | join(Q5.region)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  est: total 0.0000 ms = stream 0.0000 ms + broadcast 0.0000 ms + d2h 0.0000 ms
stage 2: build Q5.customer (key col 0)
  pipeline: scan(customer) | join(Q5.nation)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  est: total 0.0005 ms = stream 0.0005 ms + broadcast 0.0000 ms + d2h 0.0000 ms
stage 3: build Q5.orders (key col 0)
  pipeline: scan(Q5.orders) | filter | join(Q5.customer)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  est: total 0.0034 ms = stream 0.0034 ms + broadcast 0.0000 ms + d2h 0.0000 ms
stage 4: build Q5.supplier (key col 0)
  pipeline: scan(supplier) | join(Q5.nation)
  Router(LoadAware, 1 -> 24)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  est: total 0.0000 ms = stream 0.0000 ms + broadcast 0.0000 ms + d2h 0.0000 ms
stage 5: stream
  pipeline: scan(Q5.lineitem) | join(Q5.orders) | join(Q5.supplier) | filter | agg
  Router(LoadAware, 1 -> 26)
  segment cpu0: Cpu dop=12 mem=dram0 packing=Packets
  segment cpu1: Cpu dop=12 mem=dram0 packing=Packets
  segment gpu0: Gpu dop=1 mem=gmem0 packing=Packets
    MemMove(dram0 -> gmem0)
    DeviceCrossing(Cpu -> Gpu)
    MemMove(dram0 -> gmem0, broadcast \"Q5.orders\")
    MemMove(dram0 -> gmem0, broadcast \"Q5.supplier\")
  segment gpu1: Gpu dop=1 mem=gmem1 packing=Packets
    MemMove(dram0 -> gmem1)
    DeviceCrossing(Cpu -> Gpu)
    MemMove(dram0 -> gmem1, broadcast \"Q5.orders\")
    MemMove(dram0 -> gmem1, broadcast \"Q5.supplier\")
  est: total 0.0522 ms = stream 0.0373 ms + broadcast 0.0149 ms + d2h 0.0000 ms
  est: gpu hash tables 179280 B (448200 B with working space) of 858993 B
est makespan: 0.0562 ms
";

#[test]
fn q5_auto_explain_renders_subsets_and_cost_estimates() {
    let session = tpch_session();
    let q5 = q5_query(JoinAlgo::NonPartitioned);
    let text = session.explain_with(&q5, &ExecConfig::new(Placement::Auto)).unwrap();
    assert_eq!(text, Q5_AUTO_EXPLAIN, "Auto snapshot diverged:\n{text}");
    // Manual placements render no cost lines.
    let manual = session.explain_with(&q5, &ExecConfig::new(Placement::Hybrid)).unwrap();
    assert!(!manual.contains("est:"), "{manual}");
}
