//! Property-based tests over the join suite and its substrates.

use hape::join::{
    coprocess_join, cpu_npj, cpu_radix, gpu_npj, gpu_radix, radix_partition, reference_join,
    BuildProbeVariant, CoprocessConfig, JoinInput, OutputMode,
};
use hape::sim::prelude::*;
use hape::sim::topology::Server;
use proptest::prelude::*;

fn model() -> CpuCostModel {
    CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12)
}

fn keys_strategy(max_len: usize) -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec(0i32..4096, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_joins_match_reference(rk in keys_strategy(800), sk in keys_strategy(800)) {
        let rv: Vec<u32> = (0..rk.len() as u32).collect();
        let sv: Vec<u32> = (0..sk.len() as u32).map(|i| i + 10_000).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        let expect = reference_join(r, s);
        let m = model();
        let sim = GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Analytic);

        let a = cpu_npj(r, s, &m, 24, OutputMode::MatchIndices);
        prop_assert_eq!(a.stats, expect.stats);
        prop_assert_eq!(a.sorted_pairs(), expect.sorted_pairs());

        let b = cpu_radix(r, s, &m, 24, OutputMode::MatchIndices);
        prop_assert_eq!(b.stats, expect.stats);
        prop_assert_eq!(b.sorted_pairs(), expect.sorted_pairs());

        let c = gpu_npj(&sim, r, s, OutputMode::MatchIndices).unwrap();
        prop_assert_eq!(c.stats, expect.stats);
        prop_assert_eq!(c.sorted_pairs(), expect.sorted_pairs());

        let d = gpu_radix(&sim, r, s, BuildProbeVariant::Sm, OutputMode::MatchIndices).unwrap();
        prop_assert_eq!(d.stats, expect.stats);
        prop_assert_eq!(d.sorted_pairs(), expect.sorted_pairs());
    }

    #[test]
    fn partitioning_is_a_radix_respecting_permutation(
        keys in keys_strategy(2000),
        bits in 1u32..6,
        per_pass in 1u32..4,
    ) {
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let (parts, _) = radix_partition(JoinInput::new(&keys, &vals), bits, per_pass);
        // Permutation of the input multiset.
        let mut before: Vec<(i32, u32)> = keys.iter().copied().zip(vals).collect();
        let mut after: Vec<(i32, u32)> =
            parts.keys.iter().copied().zip(parts.vals.iter().copied()).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
        // Every tuple landed in the partition of its key radix.
        let mask = (1u32 << bits) - 1;
        for p in 0..parts.fanout() {
            let slice = parts.part(p);
            for &k in slice.keys {
                prop_assert_eq!((k as u32) & mask, p as u32);
            }
        }
    }

    #[test]
    fn coprocess_matches_reference_under_memory_pressure(
        rk in keys_strategy(600),
        sk in keys_strategy(600),
        shrink in 12u32..18,
    ) {
        let rv: Vec<u32> = (0..rk.len() as u32).collect();
        let sv: Vec<u32> = (0..sk.len() as u32).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        let server = Server::paper_testbed_gpu_mem_scaled(1.0 / f64::from(1u32 << shrink));
        let cfg = CoprocessConfig { n_gpus: 2, mode: OutputMode::MatchIndices, ..Default::default() };
        match coprocess_join(&server, r, s, &cfg) {
            Ok(rep) => {
                let expect = reference_join(r, s);
                prop_assert_eq!(rep.outcome.stats, expect.stats);
                prop_assert_eq!(rep.outcome.sorted_pairs(), expect.sorted_pairs());
            }
            // Legitimate refusal: an oversized co-partition (skew guard).
            Err(e) => prop_assert!(e.to_string().contains("co-partition")),
        }
    }

    #[test]
    fn cache_hit_rate_monotone_in_capacity(
        addr_seed in 0u64..1000,
        small_kb in 1usize..8,
    ) {
        use hape::sim::cache::SetAssocCache;
        use hape::sim::spec::CacheLevelSpec;
        let addrs: Vec<u64> = (0..4096u64)
            .map(|i| (i.wrapping_mul(addr_seed * 2 + 1) * 7919) % (1 << 18))
            .collect();
        let mut small = SetAssocCache::new(CacheLevelSpec {
            size: small_kb << 10, line: 64, assoc: 4, hit_ns: 1.0,
        });
        let mut large = SetAssocCache::new(CacheLevelSpec {
            size: (small_kb << 10) * 8, line: 64, assoc: 4, hit_ns: 1.0,
        });
        for &a in &addrs {
            small.access(a);
            large.access(a);
        }
        // Second pass measures steady-state hit rates.
        small.reset_stats();
        large.reset_stats();
        for &a in &addrs {
            small.access(a);
            large.access(a);
        }
        prop_assert!(large.stats().hit_rate() + 1e-9 >= small.stats().hit_rate());
    }

    #[test]
    fn simulated_join_time_monotone_in_size(scale in 1usize..5) {
        let n1 = 1usize << (12 + scale);
        let n2 = n1 * 2;
        let m = model();
        let mk = |n: usize| -> (Vec<i32>, Vec<u32>) {
            (hape::storage::datagen::gen_unique_keys(n, 3), vec![0u32; n])
        };
        let (k1, v1) = mk(n1);
        let (k2, v2) = mk(n2);
        let t1 = cpu_radix(JoinInput::new(&k1, &v1), JoinInput::new(&k1, &v1), &m, 24, OutputMode::AggregateOnly).time;
        let t2 = cpu_radix(JoinInput::new(&k2, &v2), JoinInput::new(&k2, &v2), &m, 24, OutputMode::AggregateOnly).time;
        prop_assert!(t2 > t1);
    }
}

#[test]
fn deterministic_simulation_across_runs() {
    let keys = hape::storage::datagen::gen_unique_keys(1 << 14, 9);
    let vals: Vec<u32> = (0..keys.len() as u32).collect();
    let r = JoinInput::new(&keys, &vals);
    let server = Server::paper_testbed_gpu_mem_scaled(1.0 / 4096.0);
    let cfg = CoprocessConfig { n_gpus: 2, ..Default::default() };
    let a = coprocess_join(&server, r, r, &cfg).unwrap();
    let b = coprocess_join(&server, r, r, &cfg).unwrap();
    assert_eq!(a.outcome.time, b.outcome.time);
    assert_eq!(a.per_gpu_assignments, b.per_gpu_assignments);
}
