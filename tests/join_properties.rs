//! Property-style tests over the join suite and its substrates.
//!
//! These were originally `proptest` generators; the registry is unreachable
//! in this environment, so the same properties run over deterministic
//! seeded case sweeps instead — every case is reproducible by seed.

use hape::join::{
    coprocess_join, cpu_npj, cpu_radix, gpu_npj, gpu_radix, radix_partition, reference_join,
    BuildProbeVariant, CoprocessConfig, JoinInput, OutputMode,
};
use hape::sim::prelude::*;
use hape::sim::topology::Server;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn model() -> CpuCostModel {
    CpuCostModel::new(CpuSpec::xeon_e5_2650l_v3(), 12)
}

/// `len` keys in `[0, 4096)`, deterministic per seed.
fn keys(len: usize, seed: u64) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len.max(1)).map(|_| rng.gen_range(0..4096)).collect()
}

fn len_for(seed: u64, max_len: usize) -> usize {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
    rng.gen_range(1..max_len)
}

#[test]
fn all_joins_match_reference() {
    for case in 0..24u64 {
        let rk = keys(len_for(case, 800), case * 2 + 1);
        let sk = keys(len_for(case + 100, 800), case * 2 + 2);
        let rv: Vec<u32> = (0..rk.len() as u32).collect();
        let sv: Vec<u32> = (0..sk.len() as u32).map(|i| i + 10_000).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        let expect = reference_join(r, s);
        let m = model();
        let sim = GpuSim::new(GpuSpec::gtx_1080(), Fidelity::Analytic);

        let a = cpu_npj(r, s, &m, 24, OutputMode::MatchIndices);
        assert_eq!(a.stats, expect.stats, "case {case}: cpu_npj stats");
        assert_eq!(a.sorted_pairs(), expect.sorted_pairs(), "case {case}: cpu_npj pairs");

        let b = cpu_radix(r, s, &m, 24, OutputMode::MatchIndices);
        assert_eq!(b.stats, expect.stats, "case {case}: cpu_radix stats");
        assert_eq!(b.sorted_pairs(), expect.sorted_pairs(), "case {case}: cpu_radix pairs");

        let c = gpu_npj(&sim, r, s, OutputMode::MatchIndices).unwrap();
        assert_eq!(c.stats, expect.stats, "case {case}: gpu_npj stats");
        assert_eq!(c.sorted_pairs(), expect.sorted_pairs(), "case {case}: gpu_npj pairs");

        let d = gpu_radix(&sim, r, s, BuildProbeVariant::Sm, OutputMode::MatchIndices).unwrap();
        assert_eq!(d.stats, expect.stats, "case {case}: gpu_radix stats");
        assert_eq!(d.sorted_pairs(), expect.sorted_pairs(), "case {case}: gpu_radix pairs");
    }
}

#[test]
fn partitioning_is_a_radix_respecting_permutation() {
    for case in 0..12u64 {
        let ks = keys(len_for(case, 2000), case + 31);
        let bits = 1 + (case % 5) as u32;
        let per_pass = 1 + (case % 3) as u32;
        let vals: Vec<u32> = (0..ks.len() as u32).collect();
        let (parts, _) = radix_partition(JoinInput::new(&ks, &vals), bits, per_pass);
        // Permutation of the input multiset.
        let mut before: Vec<(i32, u32)> = ks.iter().copied().zip(vals).collect();
        let mut after: Vec<(i32, u32)> =
            parts.keys.iter().copied().zip(parts.vals.iter().copied()).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "case {case}");
        // Every tuple landed in the partition of its key radix.
        let mask = (1u32 << bits) - 1;
        for p in 0..parts.fanout() {
            let slice = parts.part(p);
            for &k in slice.keys {
                assert_eq!((k as u32) & mask, p as u32, "case {case}");
            }
        }
    }
}

#[test]
fn coprocess_matches_reference_under_memory_pressure() {
    for case in 0..10u64 {
        let rk = keys(len_for(case + 7, 600), case + 61);
        let sk = keys(len_for(case + 17, 600), case + 62);
        let shrink = 12 + (case % 6) as u32;
        let rv: Vec<u32> = (0..rk.len() as u32).collect();
        let sv: Vec<u32> = (0..sk.len() as u32).collect();
        let r = JoinInput::new(&rk, &rv);
        let s = JoinInput::new(&sk, &sv);
        let server = Server::paper_testbed_gpu_mem_scaled(1.0 / f64::from(1u32 << shrink));
        let cfg =
            CoprocessConfig { n_gpus: 2, mode: OutputMode::MatchIndices, ..Default::default() };
        match coprocess_join(&server, r, s, &cfg) {
            Ok(rep) => {
                let expect = reference_join(r, s);
                assert_eq!(rep.outcome.stats, expect.stats, "case {case}");
                assert_eq!(rep.outcome.sorted_pairs(), expect.sorted_pairs(), "case {case}");
            }
            // Legitimate refusal: an oversized co-partition (skew guard).
            Err(e) => assert!(e.to_string().contains("co-partition"), "case {case}: {e}"),
        }
    }
}

#[test]
fn cache_hit_rate_monotone_in_capacity() {
    use hape::sim::cache::SetAssocCache;
    use hape::sim::spec::CacheLevelSpec;
    for case in 0..8u64 {
        let addr_seed = case * 123 + 1;
        let small_kb = 1 + (case % 7) as usize;
        let addrs: Vec<u64> = (0..4096u64)
            .map(|i| (i.wrapping_mul(addr_seed * 2 + 1) * 7919) % (1 << 18))
            .collect();
        let mut small = SetAssocCache::new(CacheLevelSpec {
            size: small_kb << 10,
            line: 64,
            assoc: 4,
            hit_ns: 1.0,
        });
        let mut large = SetAssocCache::new(CacheLevelSpec {
            size: (small_kb << 10) * 8,
            line: 64,
            assoc: 4,
            hit_ns: 1.0,
        });
        for &a in &addrs {
            small.access(a);
            large.access(a);
        }
        // Second pass measures steady-state hit rates.
        small.reset_stats();
        large.reset_stats();
        for &a in &addrs {
            small.access(a);
            large.access(a);
        }
        assert!(
            large.stats().hit_rate() + 1e-9 >= small.stats().hit_rate(),
            "case {case}: {} < {}",
            large.stats().hit_rate(),
            small.stats().hit_rate()
        );
    }
}

#[test]
fn simulated_join_time_monotone_in_size() {
    let m = model();
    for scale in 1usize..5 {
        let n1 = 1usize << (12 + scale);
        let n2 = n1 * 2;
        let mk = |n: usize| -> (Vec<i32>, Vec<u32>) {
            (hape::storage::datagen::gen_unique_keys(n, 3), vec![0u32; n])
        };
        let (k1, v1) = mk(n1);
        let (k2, v2) = mk(n2);
        let t1 = cpu_radix(
            JoinInput::new(&k1, &v1),
            JoinInput::new(&k1, &v1),
            &m,
            24,
            OutputMode::AggregateOnly,
        )
        .time;
        let t2 = cpu_radix(
            JoinInput::new(&k2, &v2),
            JoinInput::new(&k2, &v2),
            &m,
            24,
            OutputMode::AggregateOnly,
        )
        .time;
        assert!(t2 > t1, "scale {scale}");
    }
}

#[test]
fn deterministic_simulation_across_runs() {
    let keys = hape::storage::datagen::gen_unique_keys(1 << 14, 9);
    let vals: Vec<u32> = (0..keys.len() as u32).collect();
    let r = JoinInput::new(&keys, &vals);
    let server = Server::paper_testbed_gpu_mem_scaled(1.0 / 4096.0);
    let cfg = CoprocessConfig { n_gpus: 2, ..Default::default() };
    let a = coprocess_join(&server, r, r, &cfg).unwrap();
    let b = coprocess_join(&server, r, r, &cfg).unwrap();
    assert_eq!(a.outcome.time, b.outcome.time);
    assert_eq!(a.per_gpu_assignments, b.per_gpu_assignments);
}
