//! Cross-crate integration tests: the engine, the TPC-H workload, the
//! baselines and the co-processing path agree on results, and the paper's
//! qualitative claims hold end-to-end — all through the logical
//! `Query` front-end lowered against the base catalog.

use hape::baselines::{DbmsC, DbmsG};
use hape::core::engine::EngineError;
use hape::core::{Engine, ExecConfig, JoinAlgo, LoweredQuery, Placement};
use hape::sim::topology::Server;
use hape::tpch::queries::{base_catalog, q1_query, q5_query, q6_query, q9_query};
use hape::tpch::reference::{
    q1_reference, q5_reference, q6_reference, q9_reference, rows_approx_eq,
};

const SF: f64 = 0.01;

fn setup() -> (hape::tpch::TpchData, hape::core::Catalog, Engine) {
    let data = hape::tpch::generate(SF, 777);
    let catalog = base_catalog(&data);
    let engine = Engine::new(Server::tpch_scaled(SF));
    (data, catalog, engine)
}

fn lower(q: &hape::core::Query, catalog: &hape::core::Catalog) -> LoweredQuery {
    q.lower(catalog).expect("TPC-H query lowers")
}

#[test]
fn all_systems_agree_on_q1_and_q6() {
    let (data, catalog, engine) = setup();
    for (q, reference) in [
        (lower(&q1_query(), &catalog), q1_reference(&data)),
        (lower(&q6_query(), &catalog), q6_reference(&data)),
    ] {
        let cpu =
            engine.run(&q.catalog, &q.plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
        let hybrid =
            engine.run(&q.catalog, &q.plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
        assert!(rows_approx_eq(&cpu.rows, &reference), "{}: engine CPU", q.plan.name);
        assert!(rows_approx_eq(&hybrid.rows, &reference), "{}: engine hybrid", q.plan.name);
        let c = DbmsC::new(engine.server.clone()).run_plan(&q.catalog, &q.plan).unwrap();
        assert!(rows_approx_eq(&c.rows, &reference), "{}: DBMS C", q.plan.name);
    }
}

#[test]
fn q5_partitioned_and_non_partitioned_agree() {
    let (data, catalog, engine) = setup();
    let reference = q5_reference(&data);
    for algo in [JoinAlgo::NonPartitioned, JoinAlgo::Partitioned] {
        let q = lower(&q5_query(algo), &catalog);
        for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
            let rep = engine
                .run(&q.catalog, &q.plan, &ExecConfig::new(placement))
                .unwrap_or_else(|e| panic!("{algo:?}/{placement:?}: {e}"));
            assert!(
                rows_approx_eq(&rep.rows, &reference),
                "{algo:?}/{placement:?} results diverge"
            );
        }
    }
}

#[test]
fn q9_gpu_only_oom_but_auto_coprocessing_succeeds() {
    let (data, catalog, engine) = setup();
    let reference = q9_reference(&data);
    // GPU-only must fail with the capacity error (the paper's §6.4).
    let q9p = lower(&q9_query(JoinAlgo::Partitioned), &catalog);
    let err =
        engine.run(&q9p.catalog, &q9p.plan, &ExecConfig::new(Placement::GpuOnly)).unwrap_err();
    assert!(matches!(err, EngineError::GpuMemoryExceeded { .. }), "{err}");
    // CPU-only works and matches the reference.
    let q9 = lower(&q9_query(JoinAlgo::NonPartitioned), &catalog);
    let cpu = engine.run(&q9.catalog, &q9.plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
    assert!(rows_approx_eq(&cpu.rows, &reference));
    // Auto plans the intra-operator co-processing stage (§5): it matches
    // the reference and beats the CPU-routed stream — the old hand-written
    // hybrid runner with no hand-writing left.
    let auto = engine.run(&q9.catalog, &q9.plan, &ExecConfig::new(Placement::Auto)).unwrap();
    assert!(rows_approx_eq(&auto.rows, &reference));
    assert!(
        auto.time.as_secs() < cpu.time.as_secs(),
        "co-processed auto {} !< cpu {}",
        auto.time,
        cpu.time
    );
    assert!(auto.packets_gpu > 0, "the co-processing stage must use the GPUs");
}

#[test]
fn dbms_g_runs_only_q6_of_the_four() {
    let (data, catalog, engine) = setup();
    let g = DbmsG::new(engine.server);
    let q6 = lower(&q6_query(), &catalog);
    assert!(g.run_plan(&q6.catalog, &q6.plan).is_ok());
    let q1 = lower(&q1_query(), &catalog);
    assert!(g.run_plan(&q1.catalog, &q1.plan).is_err());
    let q5 = lower(&q5_query(JoinAlgo::NonPartitioned), &catalog);
    assert!(g.run_plan(&q5.catalog, &q5.plan).is_err());
    let q9 = lower(&q9_query(JoinAlgo::NonPartitioned), &catalog);
    assert!(g.run_plan(&q9.catalog, &q9.plan).is_err());
    // And where it runs, it agrees.
    let rep = g.run_plan(&q6.catalog, &q6.plan).unwrap();
    assert!(rows_approx_eq(&rep.rows, &q6_reference(&data)));
}

#[test]
fn hybrid_is_never_slower_than_both_single_device_configs() {
    // The paper's headline Figure 8 claim: "in all four experiments the
    // multi-CPU multi-GPU hybrid configuration outperforms both".
    let (_, catalog, engine) = setup();
    for q in [
        lower(&q1_query(), &catalog),
        lower(&q6_query(), &catalog),
        lower(&q5_query(JoinAlgo::Partitioned), &catalog),
    ] {
        let cpu =
            engine.run(&q.catalog, &q.plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
        let gpu =
            engine.run(&q.catalog, &q.plan, &ExecConfig::new(Placement::GpuOnly)).unwrap();
        let hybrid =
            engine.run(&q.catalog, &q.plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
        let best = cpu.time.min(gpu.time);
        assert!(
            hybrid.time.as_secs() <= best.as_secs() * 1.05,
            "{}: hybrid {} vs best single-device {}",
            q.plan.name,
            hybrid.time,
            best
        );
    }
}

#[test]
fn scan_bound_queries_prefer_cpu_join_heavy_prefer_gpu() {
    // Figure 8's two regimes: Q1/Q6 scan-bound (CPU wins: local DRAM beats
    // PCIe), Q5 join-heavy (GPU wins despite the transfers).
    let (_, catalog, engine) = setup();
    for q in [lower(&q1_query(), &catalog), lower(&q6_query(), &catalog)] {
        let cpu =
            engine.run(&q.catalog, &q.plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
        let gpu =
            engine.run(&q.catalog, &q.plan, &ExecConfig::new(Placement::GpuOnly)).unwrap();
        assert!(
            cpu.time.as_secs() < gpu.time.as_secs(),
            "{}: CPU {} should beat GPU {}",
            q.plan.name,
            cpu.time,
            gpu.time
        );
    }
    // Q5 (join-heavy): in the paper GPU-only wins 1.4×. At our reduced
    // scale the join/scan cost ratio shrinks (EXPERIMENTS.md, E4), so we
    // assert the weaker scale-robust property: GPU-only is competitive on
    // Q5 (within 1.5×) while it loses by >2.5× on the scan-bound queries.
    let q5 = lower(&q5_query(JoinAlgo::Partitioned), &catalog);
    let cpu = engine.run(&q5.catalog, &q5.plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
    let gpu = engine.run(&q5.catalog, &q5.plan, &ExecConfig::new(Placement::GpuOnly)).unwrap();
    assert!(
        gpu.time.as_secs() < 1.5 * cpu.time.as_secs(),
        "Q5: GPU {} should be competitive with CPU {}",
        gpu.time,
        cpu.time
    );
    let q6 = lower(&q6_query(), &catalog);
    let q6_cpu =
        engine.run(&q6.catalog, &q6.plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
    let q6_gpu =
        engine.run(&q6.catalog, &q6.plan, &ExecConfig::new(Placement::GpuOnly)).unwrap();
    let q6_ratio = q6_gpu.time.as_secs() / q6_cpu.time.as_secs();
    let q5_ratio = gpu.time.as_secs() / cpu.time.as_secs();
    assert!(
        q5_ratio < q6_ratio,
        "GPU must be relatively better on join-heavy Q5 ({q5_ratio:.2}) than on \
         scan-bound Q6 ({q6_ratio:.2})"
    );
}
