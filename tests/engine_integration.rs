//! Cross-crate integration tests: the engine, the TPC-H workload, the
//! baselines and the co-processing path agree on results, and the paper's
//! qualitative claims hold end-to-end.

use hape::baselines::{DbmsC, DbmsG};
use hape::core::engine::EngineError;
use hape::core::{Engine, ExecConfig, JoinAlgo, Placement};
use hape::sim::topology::Server;
use hape::tpch::queries::{prepare_catalog, q1_plan, q5_plan, q6_plan, q9_plan, run_q9_hybrid};
use hape::tpch::reference::{
    q1_reference, q5_reference, q6_reference, q9_reference, rows_approx_eq,
};

const SF: f64 = 0.01;

fn setup() -> (hape::tpch::TpchData, hape::core::Catalog, Engine) {
    let data = hape::tpch::generate(SF, 777);
    let catalog = prepare_catalog(&data);
    let engine = Engine::new(Server::tpch_scaled(SF));
    (data, catalog, engine)
}

#[test]
fn all_systems_agree_on_q1_and_q6() {
    let (data, catalog, engine) = setup();
    for (plan, reference) in
        [(q1_plan(), q1_reference(&data)), (q6_plan(), q6_reference(&data))]
    {
        let cpu = engine.run(&catalog, &plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
        let hybrid = engine.run(&catalog, &plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
        assert!(rows_approx_eq(&cpu.rows, &reference), "{}: engine CPU", plan.name);
        assert!(rows_approx_eq(&hybrid.rows, &reference), "{}: engine hybrid", plan.name);
        let c = DbmsC::new(engine.server.clone()).run_plan(&catalog, &plan);
        assert!(rows_approx_eq(&c.rows, &reference), "{}: DBMS C", plan.name);
    }
}

#[test]
fn q5_partitioned_and_non_partitioned_agree() {
    let (data, catalog, engine) = setup();
    let reference = q5_reference(&data);
    for algo in [JoinAlgo::NonPartitioned, JoinAlgo::Partitioned] {
        for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
            let rep = engine
                .run(&catalog, &q5_plan(&data, algo), &ExecConfig::new(placement))
                .unwrap_or_else(|e| panic!("{algo:?}/{placement:?}: {e}"));
            assert!(
                rows_approx_eq(&rep.rows, &reference),
                "{algo:?}/{placement:?} results diverge"
            );
        }
    }
}

#[test]
fn q9_gpu_only_oom_but_hybrid_coprocessing_succeeds() {
    let (data, catalog, engine) = setup();
    let reference = q9_reference(&data);
    // GPU-only must fail with the capacity error (the paper's §6.4).
    let err = engine
        .run(&catalog, &q9_plan(JoinAlgo::Partitioned), &ExecConfig::new(Placement::GpuOnly))
        .unwrap_err();
    assert!(matches!(err, EngineError::GpuMemoryExceeded { .. }), "{err}");
    // CPU-only works and matches the reference.
    let cpu = engine
        .run(&catalog, &q9_plan(JoinAlgo::NonPartitioned), &ExecConfig::new(Placement::CpuOnly))
        .unwrap();
    assert!(rows_approx_eq(&cpu.rows, &reference));
    // Hybrid via intra-operator co-processing matches and beats CPU-only.
    let hybrid = run_q9_hybrid(&engine, &catalog, &data).unwrap();
    assert!(rows_approx_eq(&hybrid.rows, &reference));
    assert!(
        hybrid.time.as_secs() < cpu.time.as_secs(),
        "hybrid {} !< cpu {}",
        hybrid.time,
        cpu.time
    );
}

#[test]
fn dbms_g_runs_only_q6_of_the_four() {
    let (data, catalog, engine) = setup();
    let g = DbmsG::new(engine.server.clone());
    assert!(g.run_plan(&catalog, &q6_plan()).is_ok());
    assert!(g.run_plan(&catalog, &q1_plan()).is_err());
    assert!(g.run_plan(&catalog, &q5_plan(&data, JoinAlgo::NonPartitioned)).is_err());
    assert!(g.run_plan(&catalog, &q9_plan(JoinAlgo::NonPartitioned)).is_err());
    // And where it runs, it agrees.
    let rep = g.run_plan(&catalog, &q6_plan()).unwrap();
    assert!(rows_approx_eq(&rep.rows, &q6_reference(&data)));
}

#[test]
fn hybrid_is_never_slower_than_both_single_device_configs() {
    // The paper's headline Figure 8 claim: "in all four experiments the
    // multi-CPU multi-GPU hybrid configuration outperforms both".
    let (data, catalog, engine) = setup();
    for plan in [q1_plan(), q6_plan(), q5_plan(&data, JoinAlgo::Partitioned)] {
        let cpu = engine.run(&catalog, &plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
        let gpu = engine.run(&catalog, &plan, &ExecConfig::new(Placement::GpuOnly)).unwrap();
        let hybrid = engine.run(&catalog, &plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
        let best = cpu.time.min(gpu.time);
        assert!(
            hybrid.time.as_secs() <= best.as_secs() * 1.05,
            "{}: hybrid {} vs best single-device {}",
            plan.name,
            hybrid.time,
            best
        );
    }
}

#[test]
fn scan_bound_queries_prefer_cpu_join_heavy_prefer_gpu() {
    // Figure 8's two regimes: Q1/Q6 scan-bound (CPU wins: local DRAM beats
    // PCIe), Q5 join-heavy (GPU wins despite the transfers).
    let (data, catalog, engine) = setup();
    for plan in [q1_plan(), q6_plan()] {
        let cpu = engine.run(&catalog, &plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
        let gpu = engine.run(&catalog, &plan, &ExecConfig::new(Placement::GpuOnly)).unwrap();
        assert!(
            cpu.time.as_secs() < gpu.time.as_secs(),
            "{}: CPU {} should beat GPU {}",
            plan.name,
            cpu.time,
            gpu.time
        );
    }
    // Q5 (join-heavy): in the paper GPU-only wins 1.4×. At our reduced
    // scale the join/scan cost ratio shrinks (EXPERIMENTS.md, E4), so we
    // assert the weaker scale-robust property: GPU-only is competitive on
    // Q5 (within 1.5×) while it loses by >2.5× on the scan-bound queries.
    let plan = q5_plan(&data, JoinAlgo::Partitioned);
    let cpu = engine.run(&catalog, &plan, &ExecConfig::new(Placement::CpuOnly)).unwrap();
    let gpu = engine.run(&catalog, &plan, &ExecConfig::new(Placement::GpuOnly)).unwrap();
    assert!(
        gpu.time.as_secs() < 1.5 * cpu.time.as_secs(),
        "Q5: GPU {} should be competitive with CPU {}",
        gpu.time,
        cpu.time
    );
    let q6_cpu = engine.run(&catalog, &q6_plan(), &ExecConfig::new(Placement::CpuOnly)).unwrap();
    let q6_gpu = engine.run(&catalog, &q6_plan(), &ExecConfig::new(Placement::GpuOnly)).unwrap();
    let q6_ratio = q6_gpu.time.as_secs() / q6_cpu.time.as_secs();
    let q5_ratio = gpu.time.as_secs() / cpu.time.as_secs();
    assert!(
        q5_ratio < q6_ratio,
        "GPU must be relatively better on join-heavy Q5 ({q5_ratio:.2}) than on \
         scan-bound Q6 ({q6_ratio:.2})"
    );
}
