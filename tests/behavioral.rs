//! End-to-end behavioral-analytics suite: reference oracles on a tiny
//! hand-computed event log, result identity across placements and thread
//! counts, and the cost-model routing guarantee — `Placement::Auto` keeps
//! stateful pipelines off the GPU **because the priced sequential-state
//! penalty exceeds the CPU cost**, not because of a hard-coded pin:
//! scaling the GPU's memory system up flips the decision.

use hape::core::{ExecConfig, Placement, Query, QueryReport, Session};
use hape::ops::{col, AggFunc};
use hape::sim::topology::Server;
use hape::storage::{Batch, Column, DataType, Schema, Table};
use hape::tpch::events::{behavioral_queries, generate_events};

const THREADS: [usize; 3] = [1, 2, 8];

/// A 3-user log whose behavioral answers are computed by hand below.
fn tiny_events() -> Table {
    // user 1: signup, then a view→cart→purchase burst, a visit later on.
    // user 2: two views 10000s apart (two sessions, no funnel progress).
    // user 3: view+search burst, then visit/purchase a week+ later.
    let user_id = vec![1, 1, 1, 1, 1, 2, 2, 3, 3, 3, 3];
    let ts: Vec<i64> = vec![0, 100, 200, 300, 5000, 0, 10_000, 0, 50, 700_000, 700_100];
    let event = [
        "signup", "view", "cart", "purchase", "visit", "view", "view", "view", "search",
        "visit", "purchase",
    ];
    Table::new(
        "events",
        Schema::new([
            ("user_id", DataType::I32),
            ("ts", DataType::I64),
            ("event", DataType::Str),
        ]),
        Batch::new(vec![
            Column::from_i32(user_id),
            Column::from_i64(ts),
            Column::from_strs(event),
        ]),
    )
}

fn tiny_session() -> Session {
    let mut session = Session::new(Server::paper_testbed());
    session.register(tiny_events());
    session
}

fn events_session(n_users: usize) -> Session {
    let mut session = Session::new(Server::paper_testbed());
    session.register(generate_events(n_users, 7171));
    session
}

fn run(session: &Session, q: &Query, placement: Placement, threads: usize) -> QueryReport {
    let cfg = ExecConfig::new(placement).with_threads(threads);
    session.execute_with(q, &cfg).unwrap_or_else(|e| panic!("{}/{placement:?}: {e}", q.name))
}

#[test]
fn sessionize_matches_hand_computed_oracle() {
    // Gaps: u1 = {100,100,100,4700} → 2 sessions of 5 events;
    // u2 = {10000} → 2 sessions of 2 events; u3 = {50,699950,100} → 2
    // sessions of 4 events. Totals: 6 sessions, 11 events, 3 users.
    let session = tiny_session();
    let q = Query::new("sessions").from_table("events").sessionize("user_id", "ts", 1_800).agg(
        vec![
            (AggFunc::Sum, col("sessions")),
            (AggFunc::Sum, col("events")),
            (AggFunc::Count, col("user_id")),
        ],
    );
    let rep = run(&session, &q, Placement::CpuOnly, 1);
    assert_eq!(rep.rows.len(), 1);
    assert_eq!(rep.rows[0].1, vec![6.0, 11.0, 3.0]);
}

#[test]
fn funnel_matches_hand_computed_oracle() {
    // u1 completes view@100→cart@200→purchase@300 inside the hour
    // (depth 3); u2 and u3 only ever reach view (depth 1).
    let session = tiny_session();
    let q = Query::new("funnel")
        .from_table("events")
        .window_funnel("user_id", "ts", "event", &["view", "cart", "purchase"], 3_600)
        .group_by(&["funnel_depth"])
        .agg(vec![(AggFunc::Count, col("user_id"))]);
    let rep = run(&session, &q, Placement::CpuOnly, 1);
    let mut by_depth: Vec<(i64, f64)> = rep.rows.iter().map(|(k, v)| (k[0], v[0])).collect();
    by_depth.sort_unstable_by_key(|&(d, _)| d);
    assert_eq!(by_depth, vec![(1, 2.0), (3, 1.0)]);
}

#[test]
fn retention_matches_hand_computed_oracle() {
    // Only u1 signs up (cohort size 1); their visit@5000 lands in week 1
    // and nothing returns in week 2.
    let session = tiny_session();
    let q = Query::new("retention")
        .from_table("events")
        .retention("user_id", "ts", "event", "signup", &["visit", "visit"], 604_800)
        .agg(vec![
            (AggFunc::Sum, col("in_cohort")),
            (AggFunc::Sum, col("ret1")),
            (AggFunc::Sum, col("ret2")),
        ]);
    let rep = run(&session, &q, Placement::CpuOnly, 1);
    assert_eq!(rep.rows[0].1, vec![1.0, 1.0, 0.0]);
}

#[test]
fn sequence_match_matches_hand_computed_oracle() {
    // search→visit in order: only u3 (search@50, visit@700000).
    let session = tiny_session();
    let q = Query::new("sequence")
        .from_table("events")
        .sequence_match("user_id", "ts", "event", &["search", "visit"])
        .agg(vec![(AggFunc::Sum, col("matched")), (AggFunc::Count, col("user_id"))]);
    let rep = run(&session, &q, Placement::CpuOnly, 1);
    assert_eq!(rep.rows[0].1, vec![1.0, 3.0]);
}

#[test]
fn unknown_event_name_matches_no_rows() {
    // A pattern naming an event absent from the dictionary resolves to
    // the -1 sentinel and matches nothing — SQL semantics, not an error.
    let session = tiny_session();
    let q = Query::new("ghost")
        .from_table("events")
        .sequence_match("user_id", "ts", "event", &["checkout"])
        .agg(vec![(AggFunc::Sum, col("matched"))]);
    let rep = run(&session, &q, Placement::CpuOnly, 1);
    assert_eq!(rep.rows[0].1, vec![0.0]);
}

#[test]
fn behavioral_rows_identical_across_placements_and_threads() {
    // Row identity is the strong invariant: every placement and every
    // thread count computes bit-identical result rows; per-placement
    // reports are additionally bit-identical across thread counts.
    let session = events_session(3_000);
    let placements =
        [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid, Placement::Auto];
    for q in behavioral_queries() {
        let mut row_reference: Option<Vec<(hape::ops::GroupKey, Vec<f64>)>> = None;
        for placement in placements {
            let mut report_reference: Option<QueryReport> = None;
            for threads in THREADS {
                let cfg = ExecConfig::new(placement).with_threads(threads);
                session.verify_with(&q, &cfg).unwrap_or_else(|e| {
                    panic!("{}/{placement:?} threads={threads}: {e}", q.name)
                });
                let rep = run(&session, &q, placement, threads);
                match &row_reference {
                    None => row_reference = Some(rep.rows.clone()),
                    Some(want) => assert_eq!(
                        &rep.rows, want,
                        "{}/{placement:?} threads={threads}: rows diverged",
                        q.name
                    ),
                }
                match &report_reference {
                    None => report_reference = Some(rep),
                    Some(want) => {
                        let ctx = format!("{}/{placement:?} threads={threads}", q.name);
                        assert_eq!(rep.time, want.time, "{ctx}: makespan");
                        assert_eq!(rep.packets_cpu, want.packets_cpu, "{ctx}: cpu packets");
                        assert_eq!(rep.packets_gpu, want.packets_gpu, "{ctx}: gpu packets");
                    }
                }
            }
        }
    }
}

#[test]
fn auto_prices_stateful_pipelines_off_the_gpu_and_the_lever_flips_it() {
    // On the paper testbed the sequential-state penalty prices every
    // behavioral query onto the CPUs under Auto: the optimizer selects a
    // CPU-only device subset and, consequently, no packet reaches a GPU.
    let session = events_session(3_000);
    let cfg = ExecConfig::new(Placement::Auto).with_threads(2);
    for q in behavioral_queries() {
        let plan = session.explain_with(&q, &cfg).unwrap();
        assert!(
            !plan.contains("segment gpu"),
            "{}: Auto must price the GPUs out of the subset:\n{plan}",
            q.name
        );
        let rep = run(&session, &q, Placement::Auto, 2);
        assert_eq!(rep.packets_gpu, 0, "{}: GPU must be priced out", q.name);
        assert!(rep.packets_cpu > 0, "{}: CPUs must stream the packets", q.name);
    }
    // ...but the pin is a *price*, not a rule: give the GPUs a memory
    // system fast enough to collapse the random-access term and the same
    // optimizer puts GPU segments back into the placed plan.
    let mut server = Server::paper_testbed();
    for g in &mut server.gpus {
        g.dram_bw *= 1e4;
    }
    let mut fast = Session::new(server);
    fast.register(generate_events(3_000, 7171));
    let mut flipped = false;
    for q in behavioral_queries() {
        let plan = fast.explain_with(&q, &cfg).unwrap();
        flipped |= plan.contains("segment gpu");
    }
    assert!(flipped, "scaled-up GPU memory must flip at least one placement decision");
}
