//! The Session/Query front-end: TPC-H through the logical builder matches
//! the reference oracles on every placement, and misdescribed queries
//! surface typed `PlanError`s instead of panicking.

use hape::core::error::{HapeError, PlanError};
use hape::core::{ExecConfig, JoinAlgo, Placement, Query, Session};
use hape::ops::{col, lit, AggFunc};
use hape::sim::topology::Server;
use hape::tpch::queries::{q1_query, q5_query, q6_query, q9_query};
use hape::tpch::reference::{
    q1_reference, q5_reference, q6_reference, q9_reference, rows_approx_eq,
};

const SF: f64 = 0.01;

fn tpch_session() -> (hape::tpch::TpchData, Session) {
    let data = hape::tpch::generate(SF, 4242);
    let mut session = Session::new(Server::tpch_scaled(SF));
    session.register(data.lineitem.clone());
    session.register(data.orders.clone());
    session.register(data.customer.clone());
    session.register(data.supplier.clone());
    session.register(data.partsupp.clone());
    session.register(data.nation.clone());
    session.register(data.region.clone());
    (data, session)
}

#[test]
fn tpch_queries_match_oracles_on_every_placement() {
    let (data, session) = tpch_session();
    let cases = [
        (q1_query(), q1_reference(&data)),
        (q5_query(JoinAlgo::Partitioned), q5_reference(&data)),
        (q5_query(JoinAlgo::NonPartitioned), q5_reference(&data)),
        (q6_query(), q6_reference(&data)),
    ];
    for (query, reference) in cases {
        for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
            let rep = session
                .execute_with(&query, &ExecConfig::new(placement))
                .unwrap_or_else(|e| panic!("{}/{placement:?}: {e}", query.name));
            assert!(
                rows_approx_eq(&rep.rows, &reference),
                "{}/{placement:?} diverges from the oracle",
                query.name
            );
        }
    }
    // Q9: CPU-only matches; GPU-only is the paper's documented OOM; Auto
    // plans the §5 co-processing stage through the same front door and
    // matches too — no hand-written fallback.
    let q9 = q9_query(JoinAlgo::NonPartitioned);
    let reference = q9_reference(&data);
    let cpu = session.execute_with(&q9, &ExecConfig::new(Placement::CpuOnly)).unwrap();
    assert!(rows_approx_eq(&cpu.rows, &reference));
    assert!(matches!(
        session.execute_with(&q9, &ExecConfig::new(Placement::GpuOnly)),
        Err(HapeError::Engine(_))
    ));
    let auto = session.execute_with(&q9, &ExecConfig::new(Placement::Auto)).unwrap();
    assert!(rows_approx_eq(&auto.rows, &reference));
}

#[test]
fn mid_chain_select_reaches_project_and_matches_the_oracle() {
    // Q6 rewritten with a computed projection: the revenue term is
    // materialised by a mid-chain `select` instead of inside the
    // aggregate, exercising `PipeOp::Project` from the front-end on every
    // placement.
    let (data, session) = tpch_session();
    let lo = hape::tpch::date(1994, 1, 1);
    let hi = hape::tpch::date(1995, 1, 1);
    let q = session
        .query("Q6-select")
        .from_table("lineitem")
        .filter(
            col("l_shipdate").between(lit(lo), lit(hi)).and(
                col("l_discount")
                    .ge(lit(0.0499))
                    .and(col("l_discount").le(lit(0.0701)))
                    .and(col("l_quantity").lt(lit(24.0))),
            ),
        )
        .select(vec![("revenue_item", col("l_extendedprice").mul(col("l_discount")))])
        .agg(vec![(AggFunc::Sum, col("revenue_item"))]);
    // The select lowers to a physical projection.
    let lowered = session.lower(&q).unwrap();
    let has_project = lowered.plan.stages.iter().any(|s| match s {
        hape::core::Stage::Stream { pipeline } | hape::core::Stage::Build { pipeline, .. } => {
            pipeline.ops.iter().any(|op| matches!(op, hape::core::PipeOp::Project(_)))
        }
    });
    assert!(has_project, "select did not lower to PipeOp::Project");
    // And the result matches the Q6 oracle on every placement.
    let reference = q6_reference(&data);
    for placement in [Placement::CpuOnly, Placement::GpuOnly, Placement::Hybrid] {
        let rep = session.execute_with(&q, &ExecConfig::new(placement)).unwrap();
        assert!(
            rows_approx_eq(&rep.rows, &reference),
            "{placement:?}: {:?} vs {reference:?}",
            rep.rows
        );
    }
    // Columns not re-selected are gone: referencing one downstream is a
    // typed error, not silence.
    let bad = session
        .query("bad")
        .from_table("lineitem")
        .select(vec![("revenue_item", col("l_extendedprice").mul(col("l_discount")))])
        .agg(vec![(AggFunc::Sum, col("l_quantity"))]);
    match session.execute(&bad).unwrap_err() {
        HapeError::Plan(PlanError::UnknownColumn { column, .. }) => {
            assert_eq!(column, "l_quantity");
        }
        e => panic!("unexpected error {e}"),
    }
}

#[test]
fn unknown_table_is_a_typed_error() {
    let (_, session) = tpch_session();
    let q = session
        .query("bad")
        .from_table("lineitems")
        .agg(vec![(AggFunc::Count, col("l_orderkey"))]);
    match session.execute(&q).unwrap_err() {
        HapeError::Plan(PlanError::UnknownTable { table }) => assert_eq!(table, "lineitems"),
        e => panic!("unexpected error {e}"),
    }
}

#[test]
fn unknown_column_is_a_typed_error() {
    let (_, session) = tpch_session();
    let q = session
        .query("bad")
        .from_table("lineitem")
        .filter(col("l_shipmode").eq(lit(1)))
        .agg(vec![(AggFunc::Count, col("l_orderkey"))]);
    match session.execute(&q).unwrap_err() {
        HapeError::Plan(PlanError::UnknownColumn { column, .. }) => {
            assert_eq!(column, "l_shipmode");
        }
        e => panic!("unexpected error {e}"),
    }
}

#[test]
fn stream_without_aggregate_is_a_typed_error() {
    let (_, session) = tpch_session();
    let q = session.query("bad").from_table("lineitem");
    match session.execute(&q).unwrap_err() {
        HapeError::Plan(PlanError::StreamWithoutAggregate { name }) => assert_eq!(name, "bad"),
        e => panic!("unexpected error {e}"),
    }
}

#[test]
fn aggregating_build_side_is_a_typed_error() {
    let (_, session) = tpch_session();
    let build = Query::scan("orders").agg(vec![(AggFunc::Count, col("o_orderkey"))]);
    let q = session
        .query("bad")
        .from_table("lineitem")
        .join(build, "l_orderkey", "o_orderkey", JoinAlgo::NonPartitioned)
        .agg(vec![(AggFunc::Count, col("l_orderkey"))]);
    match session.execute(&q).unwrap_err() {
        HapeError::Plan(PlanError::BuildWithAggregate { stage }) => assert_eq!(stage, "orders"),
        e => panic!("unexpected error {e}"),
    }
}

#[test]
fn type_mismatches_are_typed_errors() {
    let (_, session) = tpch_session();
    // Numeric filter where a boolean predicate is required.
    let q = session
        .query("bad")
        .from_table("lineitem")
        .filter(col("l_quantity").add(lit(1)))
        .agg(vec![(AggFunc::Count, col("l_orderkey"))]);
    match session.execute(&q).unwrap_err() {
        HapeError::Plan(PlanError::TypeMismatch { expected, .. }) => {
            assert_eq!(expected, "boolean predicate");
        }
        e => panic!("unexpected error {e}"),
    }
    // Arithmetic over a dictionary-encoded string column.
    let q = session
        .query("bad")
        .from_table("lineitem")
        .filter(col("l_returnflag").add(lit(1)).gt(lit(0)))
        .agg(vec![(AggFunc::Count, col("l_orderkey"))]);
    assert!(matches!(
        session.execute(&q).unwrap_err(),
        HapeError::Plan(PlanError::TypeMismatch { .. })
    ));
    // Grouping by a float column.
    let q = session
        .query("bad")
        .from_table("lineitem")
        .group_by(&["l_extendedprice"])
        .agg(vec![(AggFunc::Count, col("l_orderkey"))]);
    assert!(matches!(
        session.execute(&q).unwrap_err(),
        HapeError::Plan(PlanError::TypeMismatch { .. })
    ));
    // Joining on a float key.
    let q = session
        .query("bad")
        .from_table("lineitem")
        .join(Query::scan("orders"), "l_extendedprice", "o_orderkey", JoinAlgo::NonPartitioned)
        .agg(vec![(AggFunc::Count, col("l_orderkey"))]);
    assert!(matches!(
        session.execute(&q).unwrap_err(),
        HapeError::Plan(PlanError::TypeMismatch { .. })
    ));
}

#[test]
fn string_literals_resolve_through_dictionaries() {
    let (data, session) = tpch_session();
    // Count ASIA nations: the literal resolves to a dictionary code.
    let q = session
        .query("asia")
        .from_table("nation")
        .join(
            Query::scan("region").filter(col("r_name").eq(lit("ASIA"))),
            "n_regionkey",
            "r_regionkey",
            JoinAlgo::NonPartitioned,
        )
        .agg(vec![(AggFunc::Count, col("n_nationkey"))]);
    let rep = session.execute(&q).unwrap();
    let expected = data
        .nation
        .column("n_regionkey")
        .as_i32()
        .iter()
        .filter(|&&r| {
            let asia =
                data.region.column("r_name").dict().unwrap().code_of("ASIA").unwrap() as i32;
            r == asia
        })
        .count();
    assert_eq!(rep.rows[0].1[0], expected as f64);

    // An absent literal selects nothing instead of erroring.
    let q = session
        .query("atlantis")
        .from_table("region")
        .filter(col("r_name").eq(lit("ATLANTIS")))
        .agg(vec![(AggFunc::Count, col("r_regionkey"))]);
    let rep = session.execute(&q).unwrap();
    assert!(rep.rows.is_empty() || rep.rows[0].1[0] == 0.0);

    // A string literal against a numeric column is a typed error (caught
    // by inference before dictionary resolution).
    let q = session
        .query("bad")
        .from_table("nation")
        .filter(col("n_nationkey").eq(lit("ASIA")))
        .agg(vec![(AggFunc::Count, col("n_nationkey"))]);
    assert!(matches!(
        session.execute(&q).unwrap_err(),
        HapeError::Plan(PlanError::TypeMismatch { .. })
    ));

    // Equality between two string *columns* is rejected: their
    // dictionaries assign codes independently, so the comparison would
    // silently return wrong rows.
    let q = session
        .query("bad")
        .from_table("lineitem")
        .filter(col("l_returnflag").eq(col("l_linestatus")))
        .agg(vec![(AggFunc::Count, col("l_orderkey"))]);
    match session.execute(&q).unwrap_err() {
        HapeError::Plan(PlanError::TypeMismatch { found, .. }) => {
            assert_eq!(found, "two string columns");
        }
        e => panic!("unexpected error {e}"),
    }

    // A stray string literal outside any comparison is its own typed
    // error.
    let q = session
        .query("bad")
        .from_table("region")
        .filter(lit("ASIA").eq(lit("ATLANTIS")))
        .agg(vec![(AggFunc::Count, col("r_regionkey"))]);
    assert!(matches!(
        session.execute(&q).unwrap_err(),
        HapeError::Plan(PlanError::StringComparedToNonString { .. })
    ));
}

#[test]
fn probe_before_build_is_a_typed_error_on_the_physical_layer() {
    // The logical builder cannot express this ordering violation — only a
    // hand-assembled physical plan can, and `try_new` rejects it.
    use hape::core::{Pipeline, QueryPlan, Stage};
    use hape::ops::{AggSpec, Expr};
    let err = QueryPlan::try_new(
        "bad",
        vec![Stage::Stream {
            pipeline: Pipeline::scan("fact")
                .join("ghost", 0, vec![], JoinAlgo::NonPartitioned)
                .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))])),
        }],
    )
    .unwrap_err();
    assert_eq!(err, PlanError::ProbeBeforeBuild { table: "ghost".into() });
}
