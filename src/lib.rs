//! # HAPE — Heterogeneity-conscious Analytical query Processing Engine
//!
//! A Rust reproduction of *"Hardware-conscious Query Processing in
//! GPU-accelerated Analytical Engines"* (Chrysogelos, Sioulas, Ailamaki —
//! CIDR 2019).
//!
//! This meta-crate re-exports the workspace crates under one roof:
//!
//! * [`sim`] — the hardware simulation substrate (CPU/GPU device models,
//!   memory hierarchies, PCIe interconnects, discrete-event timeline).
//! * [`storage`] — columnar storage, chunked tables, data generators.
//! * [`ops`] — relational operators (scan/filter/project/aggregate).
//! * [`join`] — hardware-conscious join algorithms (CPU/GPU radix joins,
//!   non-partitioned joins, and the co-processing join).
//! * [`core`] — the HAPE engine itself: heterogeneity traits, HetExchange
//!   operators, device providers (code generation), and the executor.
//! * [`tpch`] — TPC-H data generation and the paper's Q1/Q5/Q6/Q9* plans.
//! * [`baselines`] — the commercial-system stand-ins DBMS-C and DBMS-G.
//!
//! ## Quickstart: lower → optimize → place → run
//!
//! Describe queries logically on a [`core::Session`] — named columns,
//! fallible construction. Execution flows through four explicit layers:
//! *lowering* resolves names into the physical plan (projection pushdown,
//! positional indices, build/stream stages, memoised shared build sides);
//! the cost-based *optimizer* (under [`core::Placement::Auto`]) picks
//! per-stage device subsets from the hardware model; *placement*
//! annotates every pipeline with per-device segments carrying
//! [`core::HetTraits`] and inserts the trait-conversion exchange
//! operators (router, mem-move, device crossing); the engine then
//! *interprets* the placed plan over its device providers:
//!
//! ```
//! use hape::core::{ExecConfig, JoinAlgo, Placement, Query, Session};
//! use hape::ops::{col, lit, AggFunc};
//! use hape::sim::topology::Server;
//! use hape::storage::datagen::gen_key_fk_table;
//!
//! // A server with 2 CPU sockets and 2 GPUs, like the paper's testbed;
//! // hybrid placement by default.
//! let mut session = Session::new(Server::paper_testbed());
//!
//! // Two 4-byte-key/4-byte-payload tables, joined and counted, with a
//! // mid-chain computed projection.
//! session.register_as("fact", gen_key_fk_table(1 << 14, 1 << 14, 42));
//! session.register_as("dim", gen_key_fk_table(1 << 14, 1 << 14, 43));
//! let query = session
//!     .query("quickstart")
//!     .from_table("fact")
//!     .join(Query::scan("dim"), "k", "k", JoinAlgo::Partitioned)
//!     .select(vec![("v2", col("v").mul(lit(2.0)))])
//!     .agg(vec![(AggFunc::Count, col("v2"))]);
//!
//! // `explain` renders the placed plan: segments, traits, and the
//! // inserted HetExchange operators.
//! let text = session.explain(&query).unwrap();
//! assert!(text.contains("Router("));
//! assert!(text.contains("DeviceCrossing(Cpu -> Gpu)"));
//!
//! // `execute` = lower + place + run; the manual `Placement` arms are
//! // sugar selecting which devices participate in the placement pass.
//! let report = session.execute(&query).unwrap();
//! assert_eq!(report.rows[0].1[0], (1 << 14) as f64);
//! let cpu = session
//!     .execute_with(&query, &ExecConfig::new(Placement::CpuOnly))
//!     .unwrap();
//! assert_eq!(cpu.rows, report.rows);
//!
//! // `Placement::Auto` adds the optimize layer: per-stage device subsets
//! // chosen by the analytic cost model (and shown by `explain`).
//! let auto = session
//!     .execute_with(&query, &ExecConfig::new(Placement::Auto))
//!     .unwrap();
//! assert_eq!(auto.rows, report.rows);
//!
//! // Misdescribed queries are typed errors, not panics.
//! let bad = session.query("bad").from_table("fact")
//!     .filter(col("missing").lt(lit(1)))
//!     .agg(vec![(AggFunc::Count, col("k"))]);
//! assert!(session.execute(&bad).is_err());
//! ```
//!
//! ## Q9 under plain `Placement::Auto`
//!
//! The paper's hardest case — TPC-H Q9, whose hash tables exceed GPU
//! memory (§6.4) — needs no special treatment: the manual GPU placements
//! report the typed out-of-memory error, while the optimizer plans the
//! stream as a first-class §5 **co-processing stage** (CPU co-partitioning
//! feeding single-pass per-GPU radix joins) and the engine runs it to
//! completion, faster than retreating to the CPUs:
//!
//! ```
//! use hape::core::{ExecConfig, JoinAlgo, PlacedStage, Placement, Session};
//! use hape::sim::topology::Server;
//! use hape::tpch::queries::q9_query;
//!
//! let sf = 0.01; // GPU memory scales with SF: the capacity cliff holds
//! let data = hape::tpch::generate(sf, 42);
//! let mut session = Session::new(Server::tpch_scaled(sf));
//! for t in [&data.lineitem, &data.orders, &data.customer, &data.supplier,
//!           &data.partsupp, &data.nation, &data.region] {
//!     session.register(t.clone());
//! }
//! let q9 = q9_query(JoinAlgo::NonPartitioned);
//! let gpu_cfg = ExecConfig::new(Placement::GpuOnly);
//! assert!(session.execute_with(&q9, &gpu_cfg).is_err(), "the §6.4 OOM");
//!
//! let auto_cfg = ExecConfig::new(Placement::Auto);
//! let placed = session.place_with(&q9, &auto_cfg).unwrap();
//! assert!(matches!(placed.stages.last(), Some(PlacedStage::CoProcess { .. })));
//! let auto = session.execute_with(&q9, &auto_cfg).unwrap();
//! let cpu = session.execute_with(&q9, &ExecConfig::new(Placement::CpuOnly)).unwrap();
//! assert!(auto.time < cpu.time, "co-processing beats the CPU retreat");
//! ```
//!
//! ## The two-plane runtime: parallel data plane, deterministic sim time
//!
//! The interpreter splits into a **deterministic control plane** (routing
//! picks + `SimTime` accounting, replayed sequentially from worker
//! `ready_at` state) and a **parallel data plane** (the real columnar
//! kernel work and per-worker aggregation folds, on a scoped
//! `std::thread` worker pool — [`core::runtime`]). The thread count is a
//! pure wall-clock knob: simulated makespans and result rows are
//! bit-identical at any value.
//!
//! ```
//! use hape::core::{ExecConfig, JoinAlgo, Placement, Query, Session};
//! use hape::ops::{col, AggFunc};
//! use hape::sim::topology::Server;
//! use hape::storage::datagen::gen_key_fk_table;
//!
//! let mut session = Session::new(Server::paper_testbed());
//! session.register_as("fact", gen_key_fk_table(1 << 14, 1 << 14, 42));
//! session.register_as("dim", gen_key_fk_table(1 << 12, 1 << 12, 43));
//! let q = session
//!     .query("planes")
//!     .from_table("fact")
//!     .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
//!     .agg(vec![(AggFunc::Sum, col("v"))]);
//!
//! // `threads` sizes the data-plane pool; `packet_rows` overrides the
//! // auto packet-sizing heuristic (`ExecConfig::auto_packet_rows`).
//! let seq = ExecConfig::new(Placement::Hybrid).with_threads(1);
//! let par = ExecConfig::new(Placement::Hybrid).with_threads(8);
//! let a = session.execute_with(&q, &seq).unwrap();
//! let b = session.execute_with(&q, &par).unwrap();
//! assert_eq!(a.rows, b.rows);   // bit-identical results…
//! assert_eq!(a.time, b.time);   // …and bit-identical simulated makespan
//! ```
//!
//! ## Fault injection + degradation-aware recovery
//!
//! A seeded [`core::FaultPlan`] ([`core::ExecConfig::with_faults`], or
//! [`core::serve::SessionServer::with_faults`] for batches — off by
//! default, one branch per hook when disabled) schedules typed device
//! and link faults at control-plane coordinates, so injection is as
//! deterministic as the runtime itself: bit-identical at any thread
//! count. Transient transfer faults retry with exponential backoff
//! priced into the simulated clock; permanent loss re-places the
//! remaining stages on the surviving fleet and resumes from the stage
//! barrier. The serving layer quarantines failed devices fleet-wide
//! (admission and the build cache follow the shared
//! [`core::HealthRegistry`]) and reports per-query
//! [`core::serve::Outcome`]s — `Degraded`, `TimedOut` (sim-time budgets
//! via [`core::serve::SessionServer::submit_with_budget`]) and
//! `Canceled` ([`core::serve::CancelToken`]) are results, not errors:
//!
//! ```
//! use hape::core::{ExecConfig, FaultKind, FaultPlan, FaultSpec, JoinAlgo,
//!                  Placement, Query, RetryPolicy, Session, Trigger};
//! use hape::ops::{col, AggFunc};
//! use hape::sim::topology::Server;
//! use hape::storage::datagen::gen_key_fk_table;
//!
//! let mut session = Session::new(Server::paper_testbed());
//! session.register_as("fact", gen_key_fk_table(1 << 16, 1 << 18, 42));
//! session.register_as("dim", gen_key_fk_table(1 << 13, 1 << 13, 43));
//! let q = session
//!     .query("chaos")
//!     .from_table("fact")
//!     .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
//!     .agg(vec![(AggFunc::Count, col("k")), (AggFunc::Sum, col("v"))]);
//! let clean = session.execute_with(&q, &ExecConfig::new(Placement::Hybrid)).unwrap();
//!
//! // GPU 0's link drops one transfer (retried, backoff on the sim
//! // clock), then GPU 1 dies for good after its second committed packet
//! // (the engine re-places the rest of the query on the survivors).
//! let plan = FaultPlan::new(
//!     vec![
//!         FaultSpec {
//!             gpu: 0,
//!             kind: FaultKind::TransferError { failures: 1 },
//!             trigger: Trigger::AtGpuPacket(1),
//!         },
//!         FaultSpec {
//!             gpu: 1,
//!             kind: FaultKind::GpuFailed,
//!             trigger: Trigger::AtGpuPacket(2),
//!         },
//!     ],
//!     RetryPolicy::default(),
//! );
//! let cfg = ExecConfig::new(Placement::Hybrid).with_faults(plan);
//! let faulted = session.execute_with(&q, &cfg).unwrap();
//!
//! // Recovery is visible (priced retries, a re-placement) — and never
//! // changes the answer.
//! assert_eq!(faulted.rows, clean.rows);
//! assert_eq!((faulted.retries, faulted.replans), (1, 1));
//! ```
//!
//! ## Observability: the tracing + metrics plane
//!
//! Hand a [`core::TraceRecorder`] to any run ([`core::ExecConfig::with_trace`],
//! or [`core::serve::SessionServer::with_trace`] for batches) and every
//! layer records into it: query → stage → packet spans stamped with both
//! the simulated and the wall clock, engine counters (rows per operator,
//! PCIe bytes, packets per worker), and — under [`core::Placement::Auto`]
//! — the optimizer's per-stage cost estimate next to the observed stage
//! time. Recording is a pure observer: results and simulated makespans
//! stay bit-identical to untraced runs at any thread count. Export with
//! [`core::Trace::to_chrome_json`] (open in `chrome://tracing`/Perfetto)
//! or [`core::Trace::render_profile`] / [`core::Session::profile`]:
//!
//! ```
//! use hape::core::trace::{SpanKind, TraceRecorder};
//! use hape::core::{ExecConfig, JoinAlgo, Placement, Query, Session};
//! use hape::ops::{col, AggFunc};
//! use hape::sim::topology::Server;
//! use hape::storage::datagen::gen_key_fk_table;
//!
//! let mut session = Session::new(Server::paper_testbed());
//! session.register_as("fact", gen_key_fk_table(1 << 14, 1 << 14, 42));
//! session.register_as("dim", gen_key_fk_table(1 << 12, 1 << 12, 43));
//! let q = session
//!     .query("traced")
//!     .from_table("fact")
//!     .join(Query::scan("dim"), "k", "k", JoinAlgo::NonPartitioned)
//!     .agg(vec![(AggFunc::Count, col("k"))]);
//!
//! // Tracing never perturbs execution: same rows, same makespan.
//! let plain = session.execute_with(&q, &ExecConfig::new(Placement::Auto)).unwrap();
//! let recorder = TraceRecorder::new();
//! let cfg = ExecConfig::new(Placement::Auto).with_trace(recorder.clone());
//! let traced = session.execute_with(&q, &cfg).unwrap();
//! assert_eq!(traced.rows, plain.rows);
//! assert_eq!(traced.time, plain.time);
//!
//! // The trace holds every layer's spans plus the engine counters…
//! let trace = recorder.snapshot();
//! for kind in [SpanKind::Query, SpanKind::Stage, SpanKind::Packet] {
//!     assert!(trace.spans.iter().any(|s| s.kind == kind));
//! }
//! assert!(trace.to_chrome_json().contains("\"wall-time\""));
//!
//! // …and `Session::profile` renders predicted-vs-observed per stage.
//! let profile = session.profile(&q).unwrap();
//! assert!(profile.contains("est/act"));
//! ```
//!
//! ## Beyond TPC-H: the behavioral-analytics suite
//!
//! Order-sensitive stateful aggregates — `sessionize`, `window_funnel`,
//! `retention`, `sequence_match` ([`ops::StatefulAgg`]) — run over a
//! deterministic web-analytics event log ([`tpch::events`], sorted by
//! `(user, ts)`; packetization never splits a user's run). Their
//! sequential per-user state is exactly what GPUs are bad at, so they
//! stress the placement layer where TPC-H doesn't: the optimizer routes
//! them to the CPUs because the cost model's sequential-state arm *prices*
//! the GPU penalty — not by rule, as the flip test in
//! `tests/behavioral.rs` shows by scaling GPU memory bandwidth:
//!
//! ```
//! use hape::core::{ExecConfig, Placement, Session};
//! use hape::ops::{col, AggFunc};
//! use hape::sim::topology::Server;
//! use hape::tpch::events::{behavioral_queries, generate_events, SESSION_GAP};
//!
//! let mut session = Session::new(Server::paper_testbed());
//! session.register(generate_events(500, 7171));
//!
//! // Stateful ops are ordinary Query vocabulary: sessionize the
//! // clickstream at a 30-minute gap, then aggregate per-user results.
//! let q = session
//!     .query("sessions")
//!     .from_table("events")
//!     .sessionize("user_id", "ts", SESSION_GAP)
//!     .agg(vec![(AggFunc::Sum, col("sessions")), (AggFunc::Count, col("user_id"))]);
//!
//! // Under Auto the optimizer prices the GPUs out of the device subset…
//! let auto_cfg = ExecConfig::new(Placement::Auto);
//! let plan = session.explain_with(&q, &auto_cfg).unwrap();
//! assert!(!plan.contains("segment gpu"));
//!
//! // …while the results match any manual placement bit-for-bit: the GPU
//! // *can* run the sequential-state kernels, it is just priced out.
//! let auto = session.execute_with(&q, &auto_cfg).unwrap();
//! let cpu = session.execute_with(&q, &ExecConfig::new(Placement::CpuOnly)).unwrap();
//! let hybrid = session.execute_with(&q, &ExecConfig::new(Placement::Hybrid)).unwrap();
//! assert_eq!(auto.rows, cpu.rows);
//! assert_eq!(auto.rows, hybrid.rows);
//!
//! // The canonical suite (B1 sessions, B2 funnel, B3 retention, B4
//! // sequence-match) ships ready-made for benchmarks and tests.
//! for q in behavioral_queries() {
//!     assert!(session.execute_with(&q, &auto_cfg).is_ok());
//! }
//! ```
//!
//! The physical [`core::QueryPlan`]/[`core::Stage`]/[`core::Pipeline`]
//! layer the session lowers into remains public — benchmarks and the
//! baseline systems execute it directly under their own cost models — and
//! so is the placed [`core::PlacedPlan`] IR the placement pass produces
//! ([`core::place()`] + [`core::Engine::run_placed`]).

#![forbid(unsafe_code)]

pub use hape_baselines as baselines;
pub use hape_core as core;
pub use hape_join as join;
pub use hape_ops as ops;
pub use hape_sim as sim;
pub use hape_storage as storage;
pub use hape_tpch as tpch;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use hape_core::prelude::*;
    pub use hape_join::prelude::*;
    pub use hape_ops::prelude::*;
    pub use hape_sim::prelude::*;
    pub use hape_storage::prelude::*;
}
