//! # HAPE — Heterogeneity-conscious Analytical query Processing Engine
//!
//! A Rust reproduction of *"Hardware-conscious Query Processing in
//! GPU-accelerated Analytical Engines"* (Chrysogelos, Sioulas, Ailamaki —
//! CIDR 2019).
//!
//! This meta-crate re-exports the workspace crates under one roof:
//!
//! * [`sim`] — the hardware simulation substrate (CPU/GPU device models,
//!   memory hierarchies, PCIe interconnects, discrete-event timeline).
//! * [`storage`] — columnar storage, chunked tables, data generators.
//! * [`ops`] — relational operators (scan/filter/project/aggregate).
//! * [`join`] — hardware-conscious join algorithms (CPU/GPU radix joins,
//!   non-partitioned joins, and the co-processing join).
//! * [`core`] — the HAPE engine itself: heterogeneity traits, HetExchange
//!   operators, device providers (code generation), and the executor.
//! * [`tpch`] — TPC-H data generation and the paper's Q1/Q5/Q6/Q9* plans.
//! * [`baselines`] — the commercial-system stand-ins DBMS-C and DBMS-G.
//!
//! ## Quickstart
//!
//! ```
//! use hape::core::{Catalog, Engine, ExecConfig, JoinAlgo, Pipeline, Placement,
//!                  QueryPlan, Stage};
//! use hape::ops::{AggFunc, AggSpec, Expr};
//! use hape::sim::topology::Server;
//! use hape::storage::datagen::gen_key_fk_table;
//!
//! // A server with 2 CPU sockets and 2 GPUs, like the paper's testbed.
//! let engine = Engine::new(Server::paper_testbed());
//!
//! // Two 4-byte-key/4-byte-payload tables, joined and counted, hybrid.
//! let mut catalog = Catalog::new();
//! catalog.register_as("fact", gen_key_fk_table(1 << 14, 1 << 14, 42));
//! catalog.register_as("dim", gen_key_fk_table(1 << 14, 1 << 14, 43));
//! let plan = QueryPlan::new(
//!     "quickstart",
//!     vec![
//!         Stage::Build { name: "d".into(), key_col: 0, pipeline: Pipeline::scan("dim") },
//!         Stage::Stream {
//!             pipeline: Pipeline::scan("fact")
//!                 .join("d", 0, vec![1], JoinAlgo::Partitioned)
//!                 .aggregate(AggSpec::ungrouped(vec![(AggFunc::Count, Expr::col(0))])),
//!         },
//!     ],
//! );
//! let report = engine.run(&catalog, &plan, &ExecConfig::new(Placement::Hybrid)).unwrap();
//! assert_eq!(report.rows[0].1[0], (1 << 14) as f64);
//! ```
pub use hape_baselines as baselines;
pub use hape_core as core;
pub use hape_join as join;
pub use hape_ops as ops;
pub use hape_sim as sim;
pub use hape_storage as storage;
pub use hape_tpch as tpch;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use hape_core::prelude::*;
    pub use hape_join::prelude::*;
    pub use hape_ops::prelude::*;
    pub use hape_sim::prelude::*;
    pub use hape_storage::prelude::*;
}
